"""A small deterministic discrete-event simulation engine.

The engine follows the familiar generator-coroutine style of SimPy: model
code is written as generator functions that ``yield`` events (timeouts,
resource requests, other processes), and the :class:`Environment` advances a
virtual clock from event to event.

Only the features the SSD models need are implemented, which keeps the
engine small enough to reason about and test exhaustively:

* :class:`Event` — one-shot triggerable with callbacks and a value.
* :class:`Timeout` — an event scheduled a fixed delay in the future.
* :class:`Process` — drives a generator; is itself an event that triggers
  when the generator returns, carrying the generator's return value.
* :class:`AnyOf` / :class:`AllOf` — composite events.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so repeated
runs of the same model produce identical traces.

Event queue
-----------
The queue is a calendar/bucket structure rather than a single binary heap,
tuned to the two populations of events an SSD model produces:

* **Immediate events** — an event triggered via :meth:`Event.succeed` (a
  resource grant, a process completion, a signal wakeup) always fires at
  the *current* time.  Because the clock never advances while an unfired
  immediate event exists, these are already in fire order (their sequence
  numbers increase monotonically) and live in a plain FIFO deque — no
  heap operations, no tuple packing.  The majority of all events take
  this path.
* **Future events** — timeouts with a strictly positive delay are placed
  in calendar buckets of :attr:`Environment.bucket_us` width (default
  sized to the NAND timing quanta: transfers are a few us, tR ~60 us,
  tPROG ~700 us, tBERS ~3000 us).  Insertion into a far bucket is an
  O(1) list append; only the *near* bucket — the one currently being
  drained — is kept as a heap, so heap traffic is confined to a handful
  of co-scheduled entries instead of the whole horizon.

The fire order is exactly the total order ``(fire_time, sequence)`` the
previous single-heap implementation used, so the refactor is observably
identical: same event interleaving, same timestamps, same figures to the
byte.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return "done at %.0f" % env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
'done at 5'
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import SimulationError

#: Type alias for model coroutines driven by :class:`Process`.
ProcessGenerator = Generator["Event", Any, Any]

#: Entry in the calendar's future-event buckets.
_QueueEntry = Tuple[float, int, "Event"]

#: Event-pop observer installed by the nondeterminism sanitizer
#: (:mod:`repro.lint.sanitizer`): called as ``observer(now, event)`` for
#: every event :meth:`Environment._step` dequeues, in fire order.  None
#: in normal runs — the per-event cost is one global load and a None
#: check, which keeps the hot path allocation-free.
_pop_observer: Optional[Callable[[float, "Event"], None]] = None


def set_pop_observer(
    observer: Optional[Callable[[float, "Event"], None]],
) -> None:
    """Install (or clear, with ``None``) the event-pop observer.

    Observers see every pop across *all* environments in the process;
    the sanitizer relies on that to fingerprint a whole figure run
    without threading a handle through model code.
    """
    global _pop_observer
    _pop_observer = observer


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` (or
    :meth:`fail`) triggers it, records its value, and schedules its
    callbacks to run at the current simulation time.  Waiting processes are
    resumed through those callbacks.
    """

    __slots__ = (
        "env", "callbacks", "_triggered", "_value", "_failed", "_processed",
        "_fire_at", "_seq",
    )

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event when it fires.
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: Any = None
        self._failed = False
        # True once the environment has drained this event's callbacks; a
        # process yielding an already-processed event must resume via a
        # relay event rather than by appending a callback nobody will run.
        self._processed = False
        #: Queue bookkeeping, written by the environment at schedule time.
        self._fire_at = 0.0
        self._seq = 0

    @property
    def triggered(self) -> bool:
        """Whether the event has fired (successfully or not)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the environment has already run this event's callbacks."""
        return self._processed

    @property
    def failed(self) -> bool:
        """Whether the event fired through :meth:`fail`."""
        return self._failed

    @property
    def value(self) -> Any:
        """The value the event fired with (or the exception, if failed)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self._value = value
        env = self.env
        self._fire_at = env._now
        self._seq = env._sequence
        env._sequence += 1
        env._immediate.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, re-raised in waiters."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._failed = True
        self._value = exception
        env = self.env
        self._fire_at = env._now
        self._seq = env._sequence
        env._sequence += 1
        env._immediate.append(self)
        return self


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        # Flattened Event.__init__: a timeout is born triggered and goes
        # straight into the queue, so the generic succeed() path (and its
        # already-triggered check) never applies.
        self.env = env
        self.callbacks = []
        self._triggered = True
        self._value = value
        self._failed = False
        self._processed = False
        self.delay = delay
        env._schedule(self, delay)


class Process(Event):
    """Runs a generator coroutine; triggers when the generator returns.

    The process resumes its generator every time the event the generator
    yielded fires.  Successful events send their value into the generator;
    failed events throw their exception into it, so model code can use
    ordinary ``try/except`` around ``yield``.
    """

    __slots__ = ("_generator", "name")

    def __init__(
        self, env: "Environment", generator: ProcessGenerator, name: str = ""
    ) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(
                "process() requires a generator; did you forget to call "
                "the generator function?"
            )
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the generator at the current time via an immediate event.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(None)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self._triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        try:
            if event._failed:
                target = self._generator.throw(event._value)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # model raised: propagate to waiters
            if not self.callbacks:
                # Nobody is waiting (e.g. a background worker): surface the
                # failure loudly instead of swallowing it.
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances"
            )
        if target.env is not self.env:
            raise SimulationError("cannot wait on an event from another Environment")
        if target._processed:
            # The event fired in the past and its callbacks already ran;
            # resume through a fresh relay event so we still wake up.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            if target._failed:
                relay.fail(target._value)
            else:
                relay.succeed(target._value)
        else:
            target.callbacks.append(self._resume)


class Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: Tuple[Event, ...] = tuple(events)
        for child in self.events:
            if child.env is not env:
                raise SimulationError(
                    "condition mixes events from different environments"
                )
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for child in self.events:
            if child._processed:
                # Callbacks already drained: deliver the outcome directly.
                self._child_fired(child)
            else:
                child.callbacks.append(self._child_fired)

    def _child_fired(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ()

    def _child_fired(self, event: Event) -> None:
        if self._triggered:
            return
        if event._failed:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child._value for child in self.events])


class AnyOf(Condition):
    """Fires when the first child event fires; value is that event's value."""

    __slots__ = ()

    def _child_fired(self, event: Event) -> None:
        if self._triggered:
            return
        if event._failed:
            self.fail(event._value)
            return
        self.succeed(event._value)


class Environment:
    """Holds the event queue and the simulation clock.

    The clock starts at 0.0 microseconds and only moves when :meth:`run`
    processes events.  All model components sharing an environment observe
    the same clock.

    ``bucket_us`` sets the calendar-bucket width for future events; the
    default suits the NAND timing quanta (see the module docstring).  Any
    positive width produces identical simulation output — it only shifts
    work between bucket appends and near-heap operations.
    """

    def __init__(self, bucket_us: float = 64.0) -> None:
        if bucket_us <= 0:
            raise SimulationError(f"bucket_us must be > 0, got {bucket_us}")
        self._now = 0.0
        self._sequence = 0
        self._processed_events = 0
        self.bucket_us = bucket_us
        self._bucket_inv = 1.0 / bucket_us
        #: Events triggered at the current time, already in fire order.
        self._immediate: Deque[Event] = deque()
        #: The earliest calendar bucket, kept as a heap while draining.
        self._near: List[_QueueEntry] = []
        self._near_key = -1
        #: Far calendar buckets: unsorted appends, sorted on activation.
        self._far: Dict[int, List[_QueueEntry]] = {}
        self._far_keys: List[int] = []

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (diagnostic)."""
        return self._processed_events

    @property
    def queued_events(self) -> int:
        """Events currently awaiting processing (diagnostic)."""
        return (
            len(self._immediate)
            + len(self._near)
            + sum(len(bucket) for bucket in self._far.values())
        )

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """Create an untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process driving ``generator``; returns its event."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling internals -------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        """Queue ``event`` to fire ``delay`` microseconds from now."""
        seq = self._sequence
        self._sequence = seq + 1
        event._seq = seq
        if delay == 0.0:
            # Zero-delay timeouts join the immediate FIFO: same
            # (time, seq) order, no calendar traffic.
            event._fire_at = self._now
            self._immediate.append(event)
            return
        fire_at = self._now + delay
        event._fire_at = fire_at
        key = int(fire_at * self._bucket_inv)
        if key <= self._near_key:
            # Lands inside (or before) the bucket being drained: merge
            # into the near heap, which handles any order.  The packed
            # tuple is deliberate — it doubles as the heap's C-speed
            # comparison key, beating Event.__lt__ dispatch, and far
            # buckets reuse the same entries when they activate.
            heappush(self._near, (fire_at, seq, event))  # simlint: disable=SIM007
        else:
            bucket = self._far.get(key)
            if bucket is None:
                self._far[key] = [(fire_at, seq, event)]
                heappush(self._far_keys, key)
            else:
                bucket.append((fire_at, seq, event))

    def _activate_next_bucket(self) -> bool:
        """Move the earliest far bucket into the near heap; False if none."""
        if not self._far_keys:
            return False
        key = heappop(self._far_keys)
        bucket = self._far.pop(key)
        heapify(bucket)
        self._near = bucket
        self._near_key = key
        return True

    def _peek_time(self) -> Optional[float]:
        """Fire time of the next event, or ``None`` when the queue is empty."""
        if self._immediate:
            return self._now
        if not self._near and not self._activate_next_bucket():
            return None
        return self._near[0][0]

    def _step(self) -> None:
        """Process exactly one event from the queue."""
        immediate = self._immediate
        near = self._near
        if not near and self._activate_next_bucket():
            near = self._near
        if immediate:
            if near:
                fire_at, seq, _ = near[0]
                # A future event dequeues first only when it is due at
                # the current instant with an earlier sequence number —
                # exactly the (time, seq) order of a single heap.
                if fire_at <= self._now and seq < immediate[0]._seq:
                    event = heappop(near)[2]
                else:
                    event = immediate.popleft()
            else:
                event = immediate.popleft()
        else:
            fire_at, _, event = heappop(near)
            self._now = fire_at
        if _pop_observer is not None:
            _pop_observer(self._now, event)
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        self._processed_events += 1
        for callback in callbacks:
            callback(event)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue empties or the clock passes ``until``.

        ``until`` is an absolute simulation time.  When provided, the clock
        is advanced exactly to ``until`` even if the last processed event
        fired earlier, so bandwidth windows measured against ``env.now``
        have the expected width.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}; clock is already at {self._now}"
            )
        step = self._step
        peek = self._peek_time
        while True:
            next_at = peek()
            if next_at is None:
                break
            if until is not None and next_at > until:
                break
            step()
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` fires; return its value (raise if it failed).

        ``limit`` bounds the simulated time as a safety net against model
        deadlocks; exceeding it raises :class:`SimulationError`.
        """
        step = self._step
        immediate = self._immediate  # stable deque; _near is reassigned
        while not event._triggered:
            # Inlined _peek_time emptiness check: this loop brackets every
            # event of every measured phase, so one call per step matters.
            if (
                not immediate
                and not self._near
                and not self._activate_next_bucket()
            ):
                raise SimulationError(
                    "event queue drained before the awaited event fired "
                    "(model deadlock?)"
                )
            if self._now > limit:
                raise SimulationError(f"simulation exceeded time limit {limit}")
            step()
        if event._failed:
            raise event._value
        return event._value
