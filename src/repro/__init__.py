"""repro — a simulation-based reproduction of "KV-SSD: What Is It Good For?"
(Saha, Kim, Maruf, Bhimani; DAC 2021).

The paper characterizes a Samsung KV-SSD against its block-firmware twin
and two host-side KV stores.  This package rebuilds that entire testbed in
software:

* :mod:`repro.sim` — deterministic discrete-event engine;
* :mod:`repro.flash` — NAND geometry, timing, and the timed array;
* :mod:`repro.blockftl` / :mod:`repro.kvftl` — the two firmware
  personalities over identical flash;
* :mod:`repro.nvme` / :mod:`repro.api` — command set, driver, and the
  SNIA KVS + direct block APIs;
* :mod:`repro.hostkv` — ext4 stand-in, RocksDB stand-in (LSM), Aerospike
  stand-in (hash index);
* :mod:`repro.kvbench` — workload generation and queue-depth running;
* :mod:`repro.metrics` — latency/bandwidth/CPU/space instrumentation;
* :mod:`repro.core` — the characterization harness reproducing every
  figure, plus the analytical performance model.

Quick start::

    from repro.core import build_kv_rig

    rig = build_kv_rig()
    done = rig.env.process(rig.api.store(b"hello-key-000016", 4096))
    rig.env.run_until_complete(done)
    print(f"store completed at t={rig.env.now:.1f}us")
"""

__version__ = "1.0.0"

from repro import errors, units

__all__ = ["errors", "units", "__version__"]
