"""Leveled compaction policy (RocksDB-style).

Pure decision and merge logic, separated from the timed engine in
``store.py`` so it can be unit-tested exhaustively:

* :func:`pick_compaction` — choose what to compact next: L0 when it has
  accumulated enough flush products, otherwise the most over-budget level.
* :func:`merge_runs` — newest-wins merge of input tables, dropping
  tombstones when the output is the bottom of the tree.
* :func:`split_entries` — chop merged entries into target-size output
  tables in sorted key order.

The paper's observations depend on this machinery twice: compaction CPU
and I/O are most of the 13x host-CPU gap (RQ1), and compaction's habit of
rewriting whole files sequentially and deleting old ones is why the block
device under RocksDB never foreground-GCs (Fig. 6a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.hostkv.lsm.sstable import SSTable


@dataclass(frozen=True)
class CompactionTask:
    """A unit of compaction work: inputs from two adjacent levels."""

    upper_level: int
    upper_inputs: List[SSTable]
    lower_inputs: List[SSTable]

    @property
    def output_level(self) -> int:
        return self.upper_level + 1

    @property
    def input_bytes(self) -> int:
        return sum(t.file_bytes for t in self.upper_inputs + self.lower_inputs)

    @property
    def input_entries(self) -> int:
        return sum(len(t) for t in self.upper_inputs + self.lower_inputs)


def level_target_bytes(level: int, base_bytes: int, ratio: int) -> int:
    """Size budget of level ``level`` (levels >= 1)."""
    if level < 1:
        raise ConfigurationError("level targets are defined for levels >= 1")
    return base_bytes * (ratio ** (level - 1))


def level_bytes(tables: List[SSTable]) -> int:
    """Total file bytes of a level."""
    return sum(table.file_bytes for table in tables)


def overlapping(table: SSTable, candidates: List[SSTable]) -> List[SSTable]:
    """Candidates whose key range intersects ``table``'s."""
    return [other for other in candidates if table.overlaps(other)]


def pick_compaction(
    levels: List[List[SSTable]],
    l0_trigger: int,
    base_bytes: int,
    ratio: int,
) -> Optional[CompactionTask]:
    """Choose the next compaction, or None when the tree is in shape.

    L0 wins ties because L0 buildup is what stalls writers.
    """
    if not levels:
        return None
    if len(levels[0]) >= l0_trigger:
        upper = list(levels[0])
        lower: List[SSTable] = []
        if len(levels) > 1:
            seen = set()
            for table in upper:
                for other in overlapping(table, levels[1]):
                    if other.sst_id not in seen:
                        seen.add(other.sst_id)
                        lower.append(other)
        return CompactionTask(0, upper, lower)
    for level in range(1, len(levels) - 1):
        tables = levels[level]
        if level_bytes(tables) <= level_target_bytes(level, base_bytes, ratio):
            continue
        # Oldest table first: a simple, deterministic cursor.
        upper_table = min(tables, key=lambda t: t.sst_id)
        lower = overlapping(upper_table, levels[level + 1])
        return CompactionTask(level, [upper_table], lower)
    return None


def merge_runs(
    task: CompactionTask, is_bottom: bool
) -> Dict[bytes, Optional[int]]:
    """Newest-wins merge of the task's inputs.

    Input precedence: lower level is older than upper; within L0, higher
    sst_id is newer (flush order).  Tombstones survive unless the output
    is the bottom of the tree.
    """
    merged: Dict[bytes, Optional[int]] = {}
    ordered = sorted(task.lower_inputs, key=lambda t: t.sst_id) + sorted(
        task.upper_inputs, key=lambda t: t.sst_id
    )
    for table in ordered:
        merged.update(table.entries)
    if is_bottom:
        merged = {
            key: value for key, value in merged.items() if value is not None
        }
    return merged


def split_entries(
    entries: Dict[bytes, Optional[int]],
    target_bytes: int,
    level: int,
    block_bytes: int,
) -> List[SSTable]:
    """Chop merged entries into <= target-size tables in key order."""
    if target_bytes < 1:
        raise ConfigurationError(f"target bytes must be >= 1, got {target_bytes}")
    tables: List[SSTable] = []
    chunk: Dict[bytes, Optional[int]] = {}
    chunk_bytes = 0
    for key in sorted(entries):
        value = entries[key]
        chunk[key] = value
        chunk_bytes += len(key) + (value or 0)
        if chunk_bytes >= target_bytes:
            tables.append(SSTable(level, chunk, block_bytes))
            chunk = {}
            chunk_bytes = 0
    if chunk:
        tables.append(SSTable(level, chunk, block_bytes))
    return tables
