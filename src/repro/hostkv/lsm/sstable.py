"""SSTables and the block cache.

An :class:`SSTable` is an immutable sorted run persisted as one file.  The
simulator keeps its entries as a dict (sizes only) plus the derived
metadata a real table carries: key range, data size, and per-block layout
used to decide how many device reads a point lookup costs.  Membership is
answered exactly (a real Bloom filter's false positives are modeled as a
small extra probability of a wasted block read, configured in the store).

:class:`BlockCache` is the LRU data-block cache RocksDB is configured with
in the paper (only 10 MB — which is why its read path still mostly hits
the device, Fig. 2c).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.units import KIB, ceil_div

#: Per-entry serialized overhead in a data block (lengths, restart array).
SST_ENTRY_OVERHEAD = 16
#: Filter plus index block bytes per entry (approximate).
SST_METADATA_PER_ENTRY = 12

_sst_ids = itertools.count()


@dataclass
class SSTable:
    """One immutable sorted run."""

    level: int
    entries: Dict[bytes, Optional[int]]
    block_bytes: int = 4 * KIB
    name: str = field(default="")
    sst_id: int = field(default_factory=lambda: next(_sst_ids))

    def __post_init__(self) -> None:
        if not self.entries:
            raise ConfigurationError("an SSTable cannot be empty")
        if not self.name:
            self.name = f"sst-{self.sst_id:08d}.sst"
        self.min_key = min(self.entries)
        self.max_key = max(self.entries)
        self.data_bytes = sum(
            len(key) + (value or 0) + SST_ENTRY_OVERHEAD
            for key, value in self.entries.items()
        )
        self.file_bytes = self.data_bytes + len(self.entries) * SST_METADATA_PER_ENTRY
        self.n_blocks = max(1, ceil_div(self.data_bytes, self.block_bytes))
        # Deterministic key -> block placement (sorted order chunking).
        self.sorted_keys = sorted(self.entries)
        self._block_of: Dict[bytes, int] = {}
        position = 0
        for key in self.sorted_keys:
            value = self.entries[key]
            self._block_of[key] = min(
                position // self.block_bytes, self.n_blocks - 1
            )
            position += len(key) + (value or 0) + SST_ENTRY_OVERHEAD

    def __len__(self) -> int:
        return len(self.entries)

    def covers(self, key: bytes) -> bool:
        """Whether ``key`` falls inside this run's key range."""
        return self.min_key <= key <= self.max_key

    def overlaps(self, other: "SSTable") -> bool:
        """Whether the two runs' key ranges intersect."""
        return self.min_key <= other.max_key and other.min_key <= self.max_key

    def block_for(self, key: bytes) -> int:
        """Data block index holding ``key`` (must be present)."""
        return self._block_of[key]

    def block_offset(self, block_index: int) -> int:
        """File offset of a data block."""
        if not 0 <= block_index < self.n_blocks:
            raise ConfigurationError(
                f"block {block_index} outside [0, {self.n_blocks})"
            )
        return block_index * self.block_bytes


class BlockCache:
    """LRU cache over (sst_id, block_index) data blocks."""

    def __init__(self, capacity_bytes: int, block_bytes: int = 4 * KIB) -> None:
        if capacity_bytes < block_bytes:
            raise ConfigurationError(
                "block cache must hold at least one block"
            )
        self.capacity_bytes = capacity_bytes
        self.block_bytes = block_bytes
        self._lru: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity_blocks(self) -> int:
        """Whole blocks the cache can hold."""
        return self.capacity_bytes // self.block_bytes

    def lookup(self, sst_id: int, block_index: int) -> bool:
        """Probe (and promote) a block; True on hit."""
        key = (sst_id, block_index)
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, sst_id: int, block_index: int) -> None:
        """Admit a block, evicting LRU blocks as needed."""
        key = (sst_id, block_index)
        self._lru[key] = None
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity_blocks:
            self._lru.popitem(last=False)

    def drop_table(self, sst_id: int) -> None:
        """Evict all blocks of a deleted SSTable."""
        stale = [key for key in self._lru if key[0] == sst_id]
        for key in stale:
            del self._lru[key]

    def hit_rate(self) -> float:
        """Hit fraction so far (0.0 when unused)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
