"""Memtable: the LSM engine's in-memory write buffer.

Entries are (key -> value size) with ``None`` marking a tombstone.  Only
sizes are tracked (the simulator moves bytes, not contents); the per-entry
overhead approximates a skiplist node.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import ConfigurationError

#: Approximate skiplist/arena overhead per entry.
ENTRY_OVERHEAD_BYTES = 24


class Memtable:
    """Size-tracking in-memory table with tombstone support."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 1:
            raise ConfigurationError(
                f"memtable capacity must be >= 1 byte, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[bytes, Optional[int]] = {}
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    @property
    def bytes_used(self) -> int:
        """Approximate arena usage."""
        return self._bytes

    @property
    def is_full(self) -> bool:
        """Whether the memtable should rotate."""
        return self._bytes >= self.capacity_bytes

    def put(self, key: bytes, value_bytes: Optional[int]) -> None:
        """Insert or overwrite; ``None`` writes a tombstone."""
        if value_bytes is not None and value_bytes < 0:
            raise ConfigurationError(f"negative value size {value_bytes}")
        previous = self._entries.get(key, -1)
        if previous != -1:
            self._bytes -= self._entry_bytes(key, previous)
        self._entries[key] = value_bytes
        self._bytes += self._entry_bytes(key, value_bytes)

    def get(self, key: bytes) -> Optional[int]:
        """Value size, ``None`` for a tombstone; KeyError when absent."""
        return self._entries[key]

    def entries(self) -> Dict[bytes, Optional[int]]:
        """Snapshot of the contents (used when flushing to an SSTable)."""
        return dict(self._entries)

    def keys(self) -> Iterator[bytes]:
        """Iterate keys in insertion order."""
        return iter(self._entries)

    @staticmethod
    def _entry_bytes(key: bytes, value_bytes: Optional[int]) -> int:
        return len(key) + (value_bytes or 0) + ENTRY_OVERHEAD_BYTES
