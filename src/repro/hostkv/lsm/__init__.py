"""LSM-tree key-value store (RocksDB stand-in)."""

from repro.hostkv.lsm.compaction import (
    CompactionTask,
    level_bytes,
    level_target_bytes,
    merge_runs,
    overlapping,
    pick_compaction,
    split_entries,
)
from repro.hostkv.lsm.memtable import Memtable
from repro.hostkv.lsm.sstable import BlockCache, SSTable
from repro.hostkv.lsm.store import LSMConfig, LSMStore

__all__ = [
    "BlockCache",
    "CompactionTask",
    "LSMConfig",
    "LSMStore",
    "Memtable",
    "SSTable",
    "level_bytes",
    "level_target_bytes",
    "merge_runs",
    "overlapping",
    "pick_compaction",
    "split_entries",
]
