"""The LSM-tree key-value store (RocksDB stand-in).

End-to-end engine over the simulated file system and block SSD:
write-ahead log with group commit, memtable rotation, background flush,
leveled background compaction with write stalls, and a point-lookup path
through memtables, Bloom filters, a 10 MB block cache (the paper's
configuration), and SSTable data blocks.

What the paper measures through this engine:

* Fig. 2 — insert/update latency dominated by write stalls and compaction
  interference; read latency dominated by data-block device reads (the
  tiny cache misses almost always), but still cheaper than KV-SSD's
  in-device index walk;
* the ~13x host-CPU gap versus the KV stack (RQ1): WAL encoding, memtable
  maintenance, per-entry compaction work;
* Fig. 6a — compaction writes whole files sequentially and unlinks old
  ones (TRIM), so the block device always finds fully dead blocks to
  erase: no foreground GC;
* Fig. 7 — steady-state space amplification ~1.11 from obsolete versions
  awaiting compaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.errors import ConfigurationError, KeyNotFoundError
from repro.hostkv.fs.ext4 import SimFileSystem
from repro.hostkv.lsm.compaction import (
    CompactionTask,
    merge_runs,
    pick_compaction,
    split_entries,
)
from repro.hostkv.lsm.memtable import Memtable
from repro.hostkv.lsm.sstable import BlockCache, SSTable
from repro.kvftl.keyhash import hash_fraction
from repro.sim.engine import Environment, Event
from repro.sim.signal import Signal
from repro.units import KIB, MIB, align_up, ceil_div


@dataclass(frozen=True)
class LSMConfig:
    """Engine shape and host CPU costs."""

    memtable_bytes: int = 4 * MIB
    max_immutables: int = 2
    l0_compaction_trigger: int = 4
    l0_stall_limit: int = 8
    level_base_bytes: int = 16 * MIB
    level_ratio: int = 10
    max_levels: int = 6
    sst_target_bytes: int = 4 * MIB
    block_bytes: int = 4 * KIB
    block_cache_bytes: int = 10 * MIB
    wal_group_bytes: int = 4 * KIB
    bloom_fp_rate: float = 0.01

    # -- host CPU costs (microseconds) ------------------------------------
    put_cpu_us: float = 22.0
    get_cpu_us: float = 16.0
    filter_check_cpu_us: float = 1.5
    block_decode_cpu_us: float = 6.0
    compact_entry_cpu_us: float = 2.8
    flush_entry_cpu_us: float = 1.5

    def __post_init__(self) -> None:
        if self.l0_stall_limit < self.l0_compaction_trigger:
            raise ConfigurationError("stall limit must be >= compaction trigger")
        if self.max_levels < 2:
            raise ConfigurationError("need at least two levels")
        if not 0.0 <= self.bloom_fp_rate <= 1.0:
            raise ConfigurationError("bloom FP rate outside [0, 1]")


class LSMStore:
    """RocksDB-like store over :class:`SimFileSystem`."""

    def __init__(
        self,
        env: Environment,
        fs: SimFileSystem,
        config: Optional[LSMConfig] = None,
        component: str = "lsm",
    ) -> None:
        self.env = env
        self.fs = fs
        self.config = config or LSMConfig()
        self.component = component
        self._cpu = fs.block_api.driver.cpu
        #: The device stack's tracer: memtable flushes and compactions
        #: appear as host-category spans on the same timeline as the
        #: block I/O they generate.
        self.tracer = fs.block_api.device.tracer
        self.memtable = Memtable(self.config.memtable_bytes)
        self._immutables: List[Memtable] = []
        self.levels: List[List[SSTable]] = [
            [] for _ in range(self.config.max_levels)
        ]
        self.cache = BlockCache(
            self.config.block_cache_bytes, self.config.block_bytes
        )
        self._wal_generation = 0
        self._wal_name = self._wal_file_name(0)
        self._wal_created = False
        self._wal_pending = 0
        self._dirty = Signal(env, f"{component}.dirty")
        self._compact_wake = Signal(env, f"{component}.compact")
        self._unstall = Signal(env, f"{component}.unstall")
        self.stall_time_us = 0.0
        self.compactions_run = 0
        self.flushes_run = 0
        self.app_bytes_written = 0
        env.process(self._flush_worker(), name=f"{component}.flush")
        env.process(self._compaction_worker(), name=f"{component}.compact")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def put(self, key: bytes, value_bytes: int) -> Generator[Event, None, None]:
        """Insert or update a pair (timed)."""
        if value_bytes < 0:
            raise ConfigurationError(f"negative value size {value_bytes}")
        self._cpu.charge(self.component, self.config.put_cpu_us)
        yield from self._write_entry(key, value_bytes)

    def delete(self, key: bytes) -> Generator[Event, None, None]:
        """Write a tombstone (timed)."""
        self._cpu.charge(self.component, self.config.put_cpu_us)
        yield from self._write_entry(key, None)

    def get(self, key: bytes) -> Generator[Event, None, int]:
        """Point lookup; returns the value size (timed)."""
        self._cpu.charge(self.component, self.config.get_cpu_us)
        if key in self.memtable:
            return self._value_or_raise(key, self.memtable.get(key))
        for immutable in reversed(self._immutables):
            if key in immutable:
                return self._value_or_raise(key, immutable.get(key))
        # L0 newest-first, then each deeper level's covering table.
        for table in sorted(self.levels[0], key=lambda t: -t.sst_id):
            value = yield from self._probe_table(table, key)
            if value != -1:
                return self._value_or_raise(key, value)
        for level in range(1, self.config.max_levels):
            for table in self.levels[level]:
                if not table.covers(key):
                    continue
                value = yield from self._probe_table(table, key)
                if value != -1:
                    return self._value_or_raise(key, value)
                break  # disjoint ranges: only one table can cover the key
        raise KeyNotFoundError(f"key {key!r} not in LSM store")

    def scan(self, start_key: bytes, count: int) -> Generator[Event, None, int]:
        """Ordered range scan: up to ``count`` live entries from ``start_key``.

        This is the operation an LSM tree is *good at* and a hash-indexed
        KV-SSD is not (it has only 4-byte-prefix iterator buckets) — the
        contrast YCSB workload E surfaces.  Returns bytes read.
        """
        if count < 1:
            raise ConfigurationError(f"scan count must be >= 1, got {count}")
        self._cpu.charge(self.component, self.config.get_cpu_us)
        import bisect
        from heapq import merge as heap_merge

        sources = []
        memtable_keys = sorted(
            key for key in self.memtable.entries() if key >= start_key
        )[:count * 2]
        sources.append(memtable_keys)
        for immutable in self._immutables:
            sources.append(sorted(
                key for key in immutable.entries() if key >= start_key
            )[:count * 2])
        touched_tables = []
        for level in range(self.config.max_levels):
            for table in self.levels[level]:
                if table.max_key < start_key:
                    continue
                position = bisect.bisect_left(table.sorted_keys, start_key)
                window = table.sorted_keys[position:position + count * 2]
                if window:
                    sources.append(window)
                    touched_tables.append(table)
        selected = []
        for key in heap_merge(*sources):
            if selected and key == selected[-1]:
                continue
            selected.append(key)
            if len(selected) >= count:
                break
        # One block read per distinct (table, block) the scan touches.
        blocks_to_read = {}
        live_bytes = 0
        for key in selected:
            self._cpu.charge(self.component, self.config.filter_check_cpu_us)
            value, table = self._resolve(key)
            if value is None:
                continue  # tombstone or vanished
            live_bytes += value
            if table is not None:
                blocks_to_read.setdefault(
                    (table.sst_id, table.block_for(key)), table
                )
        for (_sst_id, block_index), table in blocks_to_read.items():
            yield from self._read_block(table, block_index)
        return live_bytes

    def _resolve(self, key: bytes):
        """Newest-wins value for ``key``: (value_or_None, table_or_None)."""
        if key in self.memtable:
            return self.memtable.get(key), None
        for immutable in reversed(self._immutables):
            if key in immutable:
                return immutable.get(key), None
        for table in sorted(self.levels[0], key=lambda t: -t.sst_id):
            if key in table.entries:
                return table.entries[key], table
        for level in range(1, self.config.max_levels):
            for table in self.levels[level]:
                if table.covers(key) and key in table.entries:
                    return table.entries[key], table
        return None, None

    def drain(self) -> Generator[Event, None, None]:
        """Flush all buffered state and settle compactions (experiment end)."""
        if len(self.memtable):
            self._rotate_memtable()
        while self._immutables or self._pending_compaction() is not None:
            self._dirty.notify_all()
            self._compact_wake.notify_all()
            yield self.env.timeout(1000.0)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def _write_entry(
        self, key: bytes, value_bytes: Optional[int]
    ) -> Generator[Event, None, None]:
        stall_started = None
        while (
            len(self._immutables) >= self.config.max_immutables
            or len(self.levels[0]) >= self.config.l0_stall_limit
        ):
            if stall_started is None:
                stall_started = self.env.now
            self._compact_wake.notify_all()
            self._dirty.notify_all()
            yield self._unstall.wait()
        if stall_started is not None:
            self.stall_time_us += self.env.now - stall_started

        # WAL group commit: the put that fills a group writes it out.
        self._wal_pending += len(key) + (value_bytes or 0) + 12
        if self._wal_pending >= self.config.wal_group_bytes:
            chunk = align_up(self._wal_pending, SimFileSystem.FS_BLOCK)
            self._wal_pending = 0
            yield from self._ensure_wal()
            yield from self.fs.append(self._wal_name, chunk)

        self.memtable.put(key, value_bytes)
        self.app_bytes_written += len(key) + (value_bytes or 0)
        if self.memtable.is_full:
            self._rotate_memtable()
            self._dirty.notify_all()

    def _ensure_wal(self) -> Generator[Event, None, None]:
        if not self._wal_created:
            self._wal_created = True
            yield from self.fs.create(self._wal_name)

    def _wal_file_name(self, generation: int) -> str:
        return f"{self.component}-wal-{generation:06d}.log"

    def _rotate_memtable(self) -> None:
        self._immutables.append(self.memtable)
        self.memtable = Memtable(self.config.memtable_bytes)
        self._wal_generation += 1
        self._wal_name = self._wal_file_name(self._wal_generation)
        self._wal_created = False
        self._wal_pending = 0

    # ------------------------------------------------------------------
    # read-path helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _value_or_raise(key: bytes, value: Optional[int]) -> int:
        if value is None:
            raise KeyNotFoundError(f"key {key!r} deleted")
        return value

    def _probe_table(
        self, table: SSTable, key: bytes
    ) -> Generator[Event, None, int]:
        """Check one SSTable; returns the value size, None-as--1 sentinel.

        Returns -1 when the table does not hold the key (possibly after a
        modeled Bloom false-positive block read); tombstones come back as
        raising via the caller.
        """
        self._cpu.charge(self.component, self.config.filter_check_cpu_us)
        if not table.covers(key):
            return -1
        present = key in table.entries
        if not present:
            salt = key + table.name.encode("ascii")
            if hash_fraction(salt) >= self.config.bloom_fp_rate:
                return -1  # clean Bloom negative
            # False positive: waste one block read in the middle.
            yield from self._read_block(table, table.n_blocks // 2)
            return -1
        first_block = table.block_for(key)
        value = table.entries[key]
        nblocks = max(1, ceil_div((value or 0), self.config.block_bytes))
        for block_index in range(
            first_block, min(first_block + nblocks, table.n_blocks)
        ):
            yield from self._read_block(table, block_index)
        if value is None:
            raise KeyNotFoundError(f"key {key!r} deleted")
        return value

    def _read_block(
        self, table: SSTable, block_index: int
    ) -> Generator[Event, None, None]:
        if self.cache.lookup(table.sst_id, block_index):
            self._cpu.charge(self.component, self.config.block_decode_cpu_us)
            return
        offset = table.block_offset(block_index)
        nbytes = min(self.config.block_bytes, table.file_bytes - offset)
        yield from self.fs.read(table.name, offset, max(1, nbytes))
        self._cpu.charge(self.component, self.config.block_decode_cpu_us)
        self.cache.insert(table.sst_id, block_index)

    # ------------------------------------------------------------------
    # background flush
    # ------------------------------------------------------------------

    def _flush_worker(self) -> Generator[Event, None, None]:
        while True:
            if not self._immutables:
                yield self.env.any_of(
                    [self._dirty.wait(), self.env.timeout(2000.0)]
                )
                continue
            immutable = self._immutables[0]
            entries = immutable.entries()
            flush_started = self.env.now
            if entries:
                table = SSTable(0, entries, self.config.block_bytes)
                self._cpu.charge(
                    self.component, self.config.flush_entry_cpu_us * len(entries)
                )
                yield from self.fs.create(table.name)
                yield from self.fs.append(table.name, table.file_bytes)
                self.levels[0].append(table)
            self._immutables.pop(0)
            self.flushes_run += 1
            if self.tracer.wants("host"):
                self.tracer.complete(
                    f"{self.component}.flush", "memtable.flush", "host",
                    self.env.now - flush_started,
                    args={"entries": len(entries)},
                )
            wal_name = self._wal_file_name(
                self._wal_generation - len(self._immutables) - 1
            )
            if self.fs.exists(wal_name):
                yield from self.fs.unlink(wal_name)
            self._unstall.notify_all()
            if len(self.levels[0]) >= self.config.l0_compaction_trigger:
                self._compact_wake.notify_all()

    # ------------------------------------------------------------------
    # background compaction
    # ------------------------------------------------------------------

    def _pending_compaction(self) -> Optional[CompactionTask]:
        return pick_compaction(
            self.levels,
            self.config.l0_compaction_trigger,
            self.config.level_base_bytes,
            self.config.level_ratio,
        )

    def _compaction_worker(self) -> Generator[Event, None, None]:
        while True:
            task = self._pending_compaction()
            if task is None:
                yield self.env.any_of(
                    [self._compact_wake.wait(), self.env.timeout(2000.0)]
                )
                continue
            yield from self._run_compaction(task)

    def _run_compaction(self, task: CompactionTask) -> Generator[Event, None, None]:
        self.compactions_run += 1
        compact_started = self.env.now
        inputs = task.upper_inputs + task.lower_inputs
        for table in inputs:
            yield from self.fs.read(table.name, 0, max(1, table.data_bytes))
        self._cpu.charge(
            self.component,
            self.config.compact_entry_cpu_us * task.input_entries,
        )
        is_bottom = all(
            not self.levels[level]
            for level in range(task.output_level + 1, self.config.max_levels)
        )
        merged = merge_runs(task, is_bottom)
        outputs: List[SSTable] = []
        if merged:
            outputs = split_entries(
                merged,
                self.config.sst_target_bytes,
                task.output_level,
                self.config.block_bytes,
            )
            for table in outputs:
                yield from self.fs.create(table.name)
                yield from self.fs.append(table.name, table.file_bytes)
        # Swap the tree state, then delete inputs (TRIM to the device).
        input_ids = {table.sst_id for table in inputs}
        self.levels[task.upper_level] = [
            t for t in self.levels[task.upper_level] if t.sst_id not in input_ids
        ]
        self.levels[task.output_level] = sorted(
            [
                t
                for t in self.levels[task.output_level]
                if t.sst_id not in input_ids
            ]
            + outputs,
            key=lambda t: t.min_key,
        )
        for table in inputs:
            self.cache.drop_table(table.sst_id)
            yield from self.fs.unlink(table.name)
        self._unstall.notify_all()
        if self.tracer.wants("host"):
            self.tracer.complete(
                f"{self.component}.compact", "compaction", "host",
                self.env.now - compact_started,
                args={
                    "inputs": len(inputs),
                    "outputs": len(outputs),
                    "entries": task.input_entries,
                    "output_level": task.output_level,
                },
            )

    # ------------------------------------------------------------------
    # observability and priming
    # ------------------------------------------------------------------

    def live_entries(self) -> int:
        """Distinct live keys across the whole tree (test/verification)."""
        merged: Dict[bytes, Optional[int]] = {}
        for level in range(self.config.max_levels - 1, 0, -1):
            for table in self.levels[level]:
                merged.update(table.entries)
        for table in sorted(self.levels[0], key=lambda t: t.sst_id):
            merged.update(table.entries)
        for immutable in self._immutables:
            merged.update(immutable.entries())
        merged.update(self.memtable.entries())
        return sum(1 for value in merged.values() if value is not None)

    def table_bytes(self) -> int:
        """Total SSTable file bytes (numerator of space amplification)."""
        return sum(
            table.file_bytes for level in self.levels for table in level
        )

    def space_amplification(self) -> float:
        """Persisted bytes over live application bytes (Fig. 7 metric)."""
        live: Dict[bytes, Optional[int]] = {}
        for level in range(self.config.max_levels - 1, -1, -1):
            for table in self.levels[level]:
                live.update(table.entries)
        app = sum(
            len(key) + value for key, value in live.items() if value is not None
        )
        if app == 0:
            raise ConfigurationError("no live data to measure amplification")
        return self.table_bytes() / app

    def prime_fill(self, entries: Dict[bytes, int], level: int = 3) -> None:
        """Install entries directly as deep-level SSTables (untimed).

        The file system allocates and the device primes the extents, so
        subsequent reads and compactions see real state; only the fill
        traffic itself is skipped — mirroring the KV device's fast_fill.
        """
        if not entries:
            raise ConfigurationError("prime_fill needs at least one entry")
        if not 1 <= level < self.config.max_levels:
            raise ConfigurationError(f"prime level {level} out of range")
        tables = split_entries(
            dict(entries),
            self.config.sst_target_bytes,
            level,
            self.config.block_bytes,
        )
        for table in tables:
            self.fs.prime_file(table.name, table.file_bytes)
            self.levels[level].append(table)
        self.levels[level].sort(key=lambda t: t.min_key)
        self.app_bytes_written += sum(
            len(key) + value for key, value in entries.items()
        )
