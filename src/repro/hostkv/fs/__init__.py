"""Extent-based file system substrate (ext4 stand-in)."""

from repro.hostkv.fs.ext4 import SimFileSystem

__all__ = ["SimFileSystem"]
