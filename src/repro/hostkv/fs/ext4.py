"""A minimal extent-based file system (ext4 stand-in).

RocksDB in the paper runs on ext4 over the block SSD.  The file system
matters to the results in three ways, all modeled:

* it maps variable-size files onto fixed-size logical blocks — one of the
  redundant mapping layers the paper's introduction calls out;
* it adds journaling and metadata write traffic (host CPU + device I/O);
* on file deletion it *discards* the freed extents, which is what lets the
  SSD erase whole blocks for dead SST files without relocation — the
  reason Fig. 6a shows no foreground-GC collapse for RocksDB.

Files are append-only streams of extents (exactly how an LSM engine uses
a file system), plus whole-file reads at arbitrary offsets and unlink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Tuple

from repro.api.block import BlockDeviceAPI
from repro.errors import ConfigurationError, DeviceFullError
from repro.sim.engine import Environment, Event
from repro.units import KIB, MIB, align_up


@dataclass
class _File:
    """In-core inode: ordered extents plus logical size."""

    extents: List[Tuple[int, int]] = field(default_factory=list)  # (offset, len)
    size_bytes: int = 0


class SimFileSystem:
    """Extent-allocating file system over a :class:`BlockDeviceAPI`."""

    #: Allocation granularity (an ext4 block).
    FS_BLOCK = 4 * KIB
    #: Largest single extent handed out (keeps allocation realistic).
    MAX_EXTENT = 8 * MIB
    #: Journal region reserved at the start of the device.
    JOURNAL_BYTES = 4 * MIB
    #: Host CPU per metadata operation (journal encode, bitmap update).
    METADATA_CPU_US = 2.0

    def __init__(
        self, env: Environment, block_api: BlockDeviceAPI, component: str = "fs"
    ) -> None:
        self.env = env
        self.block_api = block_api
        self.component = component
        device_bytes = block_api.device.user_capacity_bytes
        if device_bytes <= 2 * self.JOURNAL_BYTES:
            raise ConfigurationError("device too small for the file system")
        self._files: Dict[str, _File] = {}
        # Free space as a sorted list of (offset, length) runs.
        self._free: List[Tuple[int, int]] = [
            (self.JOURNAL_BYTES, device_bytes - self.JOURNAL_BYTES)
        ]
        self._journal_cursor = 0
        self.journal_writes = 0
        self.metadata_ops = 0

    # -- allocation ------------------------------------------------------

    def _allocate(self, nbytes: int) -> List[Tuple[int, int]]:
        """First-fit extent allocation of ``nbytes`` (FS-block aligned)."""
        needed = align_up(nbytes, self.FS_BLOCK)
        extents: List[Tuple[int, int]] = []
        index = 0
        while needed > 0 and index < len(self._free):
            offset, length = self._free[index]
            take = min(length, needed, self.MAX_EXTENT)
            extents.append((offset, take))
            needed -= take
            if take == length:
                self._free.pop(index)
            else:
                self._free[index] = (offset + take, length - take)
                index += 1
        if needed > 0:
            # Roll back the partial allocation before failing.
            for offset, length in extents:
                self._release(offset, length)
            raise DeviceFullError(
                f"file system cannot allocate {nbytes} bytes"
            )
        return extents

    def _release(self, offset: int, length: int) -> None:
        """Return an extent to the free list, coalescing neighbours."""
        self._free.append((offset, length))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for run_offset, run_length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == run_offset:
                merged[-1] = (merged[-1][0], merged[-1][1] + run_length)
            else:
                merged.append((run_offset, run_length))
        self._free = merged

    def free_bytes(self) -> int:
        """Unallocated space."""
        return sum(length for _offset, length in self._free)

    # -- journal -----------------------------------------------------------

    def _journal_write(self) -> Generator[Event, None, None]:
        """Append one 4 KiB journal record (metadata transaction commit)."""
        offset = self._journal_cursor % (self.JOURNAL_BYTES - self.FS_BLOCK)
        offset -= offset % self.FS_BLOCK
        self._journal_cursor += self.FS_BLOCK
        self.journal_writes += 1
        yield from self.block_api.write(offset, self.FS_BLOCK)

    def _charge_metadata(self) -> None:
        self.block_api.driver.cpu.charge(self.component, self.METADATA_CPU_US)
        self.metadata_ops += 1

    # -- file operations -------------------------------------------------------

    def create(self, name: str) -> Generator[Event, None, None]:
        """Create an empty file (journaled metadata)."""
        if name in self._files:
            raise ConfigurationError(f"file {name!r} already exists")
        self._files[name] = _File()
        self._charge_metadata()
        yield from self._journal_write()

    def exists(self, name: str) -> bool:
        """Whether the file is present."""
        return name in self._files

    def size(self, name: str) -> int:
        """Logical size of a file."""
        return self._file(name).size_bytes

    def files(self) -> List[str]:
        """All file names, sorted."""
        return sorted(self._files)

    def append(self, name: str, nbytes: int) -> Generator[Event, None, None]:
        """Append ``nbytes`` to a file: allocate extents and write them."""
        if nbytes <= 0:
            raise ConfigurationError(f"append size must be positive, got {nbytes}")
        inode = self._file(name)
        self._charge_metadata()
        for offset, length in self._allocate(nbytes):
            inode.extents.append((offset, length))
            remaining = length
            position = offset
            while remaining > 0:
                chunk = min(remaining, self.MAX_EXTENT)
                yield from self.block_api.write(position, chunk)
                position += chunk
                remaining -= chunk
        inode.size_bytes += nbytes
        yield from self._journal_write()

    def read(self, name: str, offset: int, nbytes: int) -> Generator[Event, None, None]:
        """Read ``nbytes`` at ``offset``; rounds to FS blocks like a real FS."""
        inode = self._file(name)
        if offset < 0 or nbytes <= 0 or offset + nbytes > inode.size_bytes:
            raise ConfigurationError(
                f"read [{offset}, {offset + nbytes}) outside file of "
                f"{inode.size_bytes} bytes"
            )
        start = offset - offset % self.FS_BLOCK
        end = align_up(offset + nbytes, self.FS_BLOCK)
        for device_offset, length in self._extents_for(inode, start, end - start):
            yield from self.block_api.read(device_offset, length)

    def unlink(self, name: str) -> Generator[Event, None, None]:
        """Delete a file, discarding (TRIM) its extents."""
        inode = self._files.pop(name, None)
        if inode is None:
            raise ConfigurationError(f"file {name!r} does not exist")
        self._charge_metadata()
        for offset, length in inode.extents:
            yield from self.block_api.deallocate(offset, length)
            self._release(offset, length)
        yield from self._journal_write()

    def prime_file(self, name: str, nbytes: int) -> None:
        """Create a file and prime its extents on the device (untimed).

        Experiment setup counterpart of ``create`` + ``append``: the
        allocator and the device mapping end up in the same state, but no
        simulated time passes.  Used to pre-build LSM trees before a
        measured phase.
        """
        if name in self._files:
            raise ConfigurationError(f"file {name!r} already exists")
        if nbytes <= 0:
            raise ConfigurationError(f"prime size must be positive, got {nbytes}")
        inode = _File()
        device = self.block_api.device
        for offset, length in self._allocate(nbytes):
            inode.extents.append((offset, length))
            device.prime_sequential_fill(
                length // device.map_unit, offset // device.map_unit
            )
        inode.size_bytes = nbytes
        self._files[name] = inode
        self.metadata_ops += 1

    # -- helpers ------------------------------------------------------------

    def _file(self, name: str) -> _File:
        inode = self._files.get(name)
        if inode is None:
            raise ConfigurationError(f"file {name!r} does not exist")
        return inode

    def _extents_for(
        self, inode: _File, start: int, nbytes: int
    ) -> List[Tuple[int, int]]:
        """Device ranges backing file range [start, start+nbytes)."""
        ranges: List[Tuple[int, int]] = []
        logical = 0
        remaining_start = start
        remaining = nbytes
        for offset, length in inode.extents:
            if remaining <= 0:
                break
            extent_end = logical + length
            if extent_end <= remaining_start:
                logical = extent_end
                continue
            in_extent = max(remaining_start - logical, 0)
            take = min(length - in_extent, remaining)
            ranges.append((offset + in_extent, take))
            remaining -= take
            remaining_start += take
            logical = extent_end
        if remaining > 0:
            raise ConfigurationError("file extents shorter than logical size")
        return ranges
