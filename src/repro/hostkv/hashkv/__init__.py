"""Hash-index key-value store over raw block storage (Aerospike stand-in)."""

from repro.hostkv.hashkv.store import HashKVConfig, HashKVStore

__all__ = ["HashKVConfig", "HashKVStore"]
