"""Hash-index key-value store over raw block storage (Aerospike stand-in).

The paper uses Aerospike with direct device access as its second baseline:
a primary index held entirely in host DRAM (no LSM levels, no compaction)
with records packed into large *write blocks* that are appended to the raw
device and defragmented in the background.  Its architecture is the
host-side mirror of the KV-SSD's own design — hash index plus log packing
— which is why the paper picks it (Sec. III).

Modeled mechanics, each load-bearing for a figure:

* records are ``header + key digest + value`` rounded up to the 16-byte
  RBLOCK unit, packed into 128 KiB write blocks -> space amplification
  below 2 even for 50 B values (Fig. 7's Aerospike line);
* reads are one DRAM index lookup plus one sector-aligned device read ->
  read latency close to raw block I/O, beating KV-SSD's in-device index
  walk (Fig. 2c);
* updates append a new copy and strand the old one, so sustained updates
  breed defragmentation traffic that competes with foreground I/O ->
  update latency degrades until KV-SSD wins (Fig. 2b, the paper's 3.64x).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Generator, Optional, Set

from repro.api.block import BlockDeviceAPI
from repro.errors import ConfigurationError, DeviceFullError, KeyNotFoundError
from repro.kvftl.population import KeyScheme
from repro.sim.engine import Environment, Event
from repro.sim.resources import TokenBucket
from repro.sim.signal import Signal
from repro.units import KIB, align_up


@dataclass(frozen=True)
class HashKVConfig:
    """Engine shape and host CPU costs."""

    write_block_bytes: int = 128 * KIB
    rblock_bytes: int = 16
    record_header_bytes: int = 35
    key_digest_bytes: int = 20
    #: Write blocks below this live fraction are defragmented.
    defrag_threshold: float = 0.5
    #: Flush concurrency cap (backpressure for the append stream).
    max_pending_flushes: int = 4
    sector_bytes: int = 512

    put_cpu_us: float = 6.0
    get_cpu_us: float = 5.0
    delete_cpu_us: float = 4.0
    defrag_entry_cpu_us: float = 0.5

    def __post_init__(self) -> None:
        if self.write_block_bytes % self.sector_bytes:
            raise ConfigurationError("write block must be sector-aligned")
        if not 0.0 < self.defrag_threshold < 1.0:
            raise ConfigurationError("defrag threshold must be in (0, 1)")
        if self.rblock_bytes < 1 or self.max_pending_flushes < 1:
            raise ConfigurationError("rblock and flush cap must be >= 1")


@dataclass
class _RecordLocation:
    """Where a key's current record lives."""

    wblock: int
    offset: int  # byte offset within the write block
    rbytes: int
    value_bytes: int


class HashKVStore:
    """Aerospike-like store over a :class:`BlockDeviceAPI`."""

    def __init__(
        self,
        env: Environment,
        block_api: BlockDeviceAPI,
        config: Optional[HashKVConfig] = None,
        component: str = "hashkv",
    ) -> None:
        self.env = env
        self.block_api = block_api
        self.config = config or HashKVConfig()
        self.component = component
        self._cpu = block_api.driver.cpu
        capacity = block_api.device.user_capacity_bytes
        self.n_wblocks = capacity // self.config.write_block_bytes
        if self.n_wblocks < 4:
            raise ConfigurationError("device too small for four write blocks")
        self._free: Deque[int] = deque(range(self.n_wblocks))
        self._live_bytes: Dict[int, int] = {}
        self._fill_bytes: Dict[int, int] = {}
        self._flushed: Set[int] = set()
        self._index: Dict[bytes, _RecordLocation] = {}
        self._defrag_queue: Deque[int] = deque()
        self._defrag_queued: Set[int] = set()
        self._defrag_wake = Signal(env, f"{component}.defrag")
        self._space_freed = Signal(env, f"{component}.freed")
        self._flush_tokens = TokenBucket(
            env, self.config.max_pending_flushes, name=f"{component}.flush"
        )
        self._current = self._free.popleft()
        self._live_bytes[self._current] = 0
        self._fill_bytes[self._current] = 0
        self._rolling = False
        self._roll_done = Signal(env, f"{component}.rolled")
        self.defrag_runs = 0
        self.defrag_moved_bytes = 0
        self.app_bytes_stored = 0
        env.process(self._defrag_worker(), name=f"{component}.defrag")

    # ------------------------------------------------------------------
    # record geometry
    # ------------------------------------------------------------------

    def record_bytes(self, value_bytes: int) -> int:
        """On-device size of a record holding ``value_bytes``."""
        if value_bytes < 0:
            raise ConfigurationError(f"negative value size {value_bytes}")
        raw = (
            self.config.record_header_bytes
            + self.config.key_digest_bytes
            + value_bytes
        )
        return align_up(raw, self.config.rblock_bytes)

    def _wblock_offset(self, wblock: int) -> int:
        return wblock * self.config.write_block_bytes

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def put(self, key: bytes, value_bytes: int) -> Generator[Event, None, None]:
        """Insert or update a key (timed)."""
        self._cpu.charge(self.component, self.config.put_cpu_us)
        rbytes = self.record_bytes(value_bytes)
        if rbytes > self.config.write_block_bytes:
            raise ConfigurationError(
                f"record of {rbytes}B exceeds a write block"
            )
        yield from self._ensure_room(rbytes)
        # Resolve the old copy only after the suspension points above: a
        # concurrent defrag may have relocated it meanwhile.
        old = self._index.get(key)
        offset = self._fill_bytes[self._current]
        self._fill_bytes[self._current] += rbytes
        self._live_bytes[self._current] += rbytes
        self._index[key] = _RecordLocation(
            self._current, offset, rbytes, value_bytes
        )
        self.app_bytes_stored += len(key) + value_bytes
        if old is not None:
            self._retire(old)

    def get(self, key: bytes) -> Generator[Event, None, int]:
        """Point lookup; returns the value size (timed)."""
        self._cpu.charge(self.component, self.config.get_cpu_us)
        location = self._index.get(key)
        if location is None:
            raise KeyNotFoundError(f"key {key!r} not in hash store")
        if location.wblock not in self._flushed:
            # Still in the host-side write buffer: DRAM copy only.
            return location.value_bytes
        start = self._wblock_offset(location.wblock) + location.offset
        aligned_start = start - start % self.config.sector_bytes
        aligned_end = align_up(start + location.rbytes, self.config.sector_bytes)
        yield from self.block_api.read(aligned_start, aligned_end - aligned_start)
        return location.value_bytes

    def delete(self, key: bytes) -> Generator[Event, None, None]:
        """Remove a key (timed; index update plus space retirement)."""
        self._cpu.charge(self.component, self.config.delete_cpu_us)
        location = self._index.pop(key, None)
        if location is None:
            raise KeyNotFoundError(f"key {key!r} not in hash store")
        self._retire(location)
        yield self.env.timeout(0.0)

    def drain(self) -> Generator[Event, None, None]:
        """Flush the current write block and settle in-flight flushes."""
        if self._fill_bytes[self._current] > 0:
            yield from self._ensure_room(self.config.write_block_bytes)
        while self._flush_tokens.available < self._flush_tokens.capacity:
            yield self.env.timeout(100.0)

    # ------------------------------------------------------------------
    # write-block lifecycle
    # ------------------------------------------------------------------

    def _ensure_room(self, rbytes: int) -> Generator[Event, None, None]:
        """Guarantee the current block can take ``rbytes``.

        Serializes block rolls: concurrent writers that find the block
        full wait for the in-flight roll instead of double-flushing it.
        """
        while True:
            if self._rolling:
                yield self._roll_done.wait()
                continue
            if (
                self._fill_bytes[self._current] + rbytes
                <= self.config.write_block_bytes
            ):
                return
            self._rolling = True
            try:
                yield from self._roll_write_block()
            finally:
                self._rolling = False
                self._roll_done.notify_all()

    def _roll_write_block(self) -> Generator[Event, None, None]:
        """Flush the current block to the device and open a fresh one."""
        full_block = self._current
        yield self._flush_tokens.get(1)
        self.env.process(self._flush_block(full_block), name=f"{self.component}.fl")
        while not self._free:
            if not self._defrag_queue and not self._defrag_candidates():
                raise DeviceFullError("hash store out of write blocks")
            self._defrag_wake.notify_all()
            yield self._space_freed.wait()
        self._current = self._free.popleft()
        self._live_bytes[self._current] = 0
        self._fill_bytes[self._current] = 0

    def _flush_block(self, wblock: int) -> Generator[Event, None, None]:
        try:
            yield from self.block_api.write(
                self._wblock_offset(wblock), self.config.write_block_bytes
            )
            self._flushed.add(wblock)
        finally:
            self._flush_tokens.put(1)

    def _retire(self, location: _RecordLocation) -> None:
        """Account a record's death; queue its block for defrag if idle."""
        self._live_bytes[location.wblock] -= location.rbytes
        if self._live_bytes[location.wblock] < 0:
            raise ConfigurationError("write-block live bytes went negative")
        self._maybe_queue_defrag(location.wblock)

    def _maybe_queue_defrag(self, wblock: int) -> None:
        if wblock == self._current or wblock in self._defrag_queued:
            return
        if wblock not in self._flushed:
            return
        fraction = self._live_bytes[wblock] / self.config.write_block_bytes
        if fraction < self.config.defrag_threshold:
            self._defrag_queued.add(wblock)
            self._defrag_queue.append(wblock)
            self._defrag_wake.notify_all()

    def _defrag_candidates(self) -> bool:
        """Whether any flushed block is below the defrag threshold."""
        threshold = self.config.defrag_threshold * self.config.write_block_bytes
        return any(
            self._live_bytes[wblock] < threshold
            for wblock in self._flushed
            if wblock != self._current
        )

    # ------------------------------------------------------------------
    # defragmentation
    # ------------------------------------------------------------------

    def _defrag_worker(self) -> Generator[Event, None, None]:
        while True:
            if not self._defrag_queue:
                yield self.env.any_of(
                    [self._defrag_wake.wait(), self.env.timeout(2000.0)]
                )
                continue
            wblock = self._defrag_queue.popleft()
            self._defrag_queued.discard(wblock)
            yield from self._defrag_block(wblock)

    def _defrag_block(self, wblock: int) -> Generator[Event, None, None]:
        """Move a cold block's live records into the current append stream."""
        if wblock == self._current or wblock not in self._flushed:
            return
        self.defrag_runs += 1
        yield from self.block_api.read(
            self._wblock_offset(wblock), self.config.write_block_bytes
        )
        movers = [
            (key, location)
            for key, location in self._index.items()
            if location.wblock == wblock
        ]
        for key, location in movers:
            if self._index.get(key) is not location:
                # Updated or deleted while we yielded; already retired.
                continue
            self._cpu.charge(self.component, self.config.defrag_entry_cpu_us)
            yield from self._ensure_room(location.rbytes)
            if self._index.get(key) is not location:
                # Raced with an update while waiting for room.
                continue
            offset = self._fill_bytes[self._current]
            self._fill_bytes[self._current] += location.rbytes
            self._live_bytes[self._current] += location.rbytes
            self._live_bytes[wblock] -= location.rbytes
            self._index[key] = _RecordLocation(
                self._current, offset, location.rbytes, location.value_bytes
            )
            self.defrag_moved_bytes += location.rbytes
        if self._live_bytes[wblock] != 0:
            raise ConfigurationError(
                f"defragged block {wblock} kept {self._live_bytes[wblock]}B live"
            )
        self._flushed.discard(wblock)
        del self._live_bytes[wblock]
        del self._fill_bytes[wblock]
        self._free.append(wblock)
        self._space_freed.notify_all()

    # ------------------------------------------------------------------
    # priming and observability
    # ------------------------------------------------------------------

    def fast_fill(
        self, count: int, value_bytes: int, scheme: Optional[KeyScheme] = None
    ) -> KeyScheme:
        """Untimed bulk load of ``count`` pairs under a key scheme.

        Mirrors the KV device's ``fast_fill``: index, write-block state and
        the underlying device mapping end up as after a real load.
        """
        scheme = scheme or KeyScheme()
        if count < 1:
            raise ConfigurationError(f"fill count must be >= 1, got {count}")
        rbytes = self.record_bytes(value_bytes)
        wblock_bytes = self.config.write_block_bytes
        per_block = wblock_bytes // rbytes
        needed_blocks = -(-count // per_block)
        if needed_blocks > len(self._free):
            raise DeviceFullError(
                f"fill needs {needed_blocks} write blocks, "
                f"{len(self._free)} free"
            )
        device = self.block_api.device
        filled = 0
        while filled < count:
            wblock = self._free.popleft()
            here = min(per_block, count - filled)
            self._fill_bytes[wblock] = here * rbytes
            self._live_bytes[wblock] = here * rbytes
            for slot in range(here):
                key = scheme.key_for(filled + slot)
                self._index[key] = _RecordLocation(
                    wblock, slot * rbytes, rbytes, value_bytes
                )
            start = self._wblock_offset(wblock)
            device.prime_sequential_fill(
                wblock_bytes // device.map_unit, start // device.map_unit
            )
            self._flushed.add(wblock)
            self.app_bytes_stored += here * (scheme.key_bytes + value_bytes)
            filled += here
        return scheme

    def live_keys(self) -> int:
        """Number of keys currently indexed."""
        return len(self._index)

    def used_device_bytes(self) -> int:
        """Device bytes consumed by populated write blocks."""
        used_blocks = self.n_wblocks - len(self._free)
        return used_blocks * self.config.write_block_bytes

    def record_device_bytes(self) -> int:
        """Bytes of live records (tight packing view)."""
        return sum(location.rbytes for location in self._index.values())

    def space_amplification(self) -> float:
        """Live record bytes over application bytes (Fig. 7 metric).

        Uses the record view (header + digest + rblock rounding); block-
        level fragmentation is bounded by the defrag threshold and is
        reported separately via :meth:`used_device_bytes`.
        """
        app = sum(
            len(key) + location.value_bytes
            for key, location in self._index.items()
        )
        if app == 0:
            raise ConfigurationError("no live data to measure amplification")
        return self.record_device_bytes() / app
