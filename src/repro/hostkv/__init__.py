"""Host-side storage stacks: file system, LSM-tree store, hash-index store."""

from repro.hostkv.fs.ext4 import SimFileSystem
from repro.hostkv.hashkv.store import HashKVConfig, HashKVStore
from repro.hostkv.lsm.store import LSMConfig, LSMStore

__all__ = [
    "HashKVConfig",
    "HashKVStore",
    "LSMConfig",
    "LSMStore",
    "SimFileSystem",
]
