"""simlint engine: file walking, suppression comments, reporting.

The rules in :mod:`repro.lint.rules` are pure AST checks; this module
owns everything file-shaped — reading sources, mapping raw findings to
paths, and honoring the suppression comments:

* ``# simlint: disable=SIM001`` — suppress on that line (several codes
  comma-separate: ``disable=SIM001,SIM005``);
* ``# simlint: disable-file=SIM001`` — suppress for the whole file.

Suppressions are *code-scoped only*: a bare ``# simlint: disable`` does
not parse and suppresses nothing, so a suppression always documents
which contract it is opting out of.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.lint.rules import check_source

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<codes>SIM\d{3}(?:\s*,\s*SIM\d{3})*)"
)

#: Directories whose modules are per-event hot paths: SIM007 (per-event
#: allocation churn) applies only here, where one extra allocation runs
#: millions of times per experiment point.
_HOT_PATH_RE = re.compile(r"(^|[/\\])(sim|flash)([/\\])")


def is_hot_path(path: "str | os.PathLike[str]") -> bool:
    """Whether ``path`` lies in a sim/flash hot-path directory."""
    return _HOT_PATH_RE.search(str(path)) is not None


@dataclass(frozen=True)
class Finding:
    """One reported violation, ready to print."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: " \
               f"{self.code} {self.message}"


def parse_suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """(file-wide codes, line -> codes) from suppression comments."""
    file_codes: Set[str] = set()
    line_codes: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "simlint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {c.strip() for c in match.group("codes").split(",")}
        if match.group("scope"):
            file_codes |= codes
        else:
            line_codes.setdefault(lineno, set()).update(codes)
    return file_codes, line_codes


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one source string; suppression comments already applied."""
    raw, parsed_ok = check_source(source, hot_path=is_hot_path(path))
    if not parsed_ok:
        return [Finding(path, raw[0].line, raw[0].col,
                        raw[0].code, raw[0].message)]
    file_codes, line_codes = parse_suppressions(source)
    findings = [
        Finding(path, f.line, f.col, f.code, f.message)
        for f in raw
        if f.code not in file_codes
        and f.code not in line_codes.get(f.line, ())
    ]
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def lint_file(path: "str | os.PathLike[str]") -> List[Finding]:
    """Lint one file on disk."""
    target = Path(path)
    return lint_source(target.read_text(encoding="utf-8"), str(target))


def iter_python_files(
    paths: Sequence["str | os.PathLike[str]"],
) -> Iterable[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
    return out


def lint_paths(paths: Sequence["str | os.PathLike[str]"]) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for target in iter_python_files(paths):
        findings.extend(lint_file(target))
    return findings


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    if not findings:
        return "simlint: clean"
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"simlint: {len(findings)} {noun}")
    return "\n".join(lines)
