"""simlint engine: file walking, suppression comments, reporting.

The rules in :mod:`repro.lint.rules` are pure AST checks; this module
owns everything file-shaped — reading sources, mapping raw findings to
paths, and honoring the suppression comments:

* ``# simlint: disable=SIM001`` — suppress on that line (several codes
  comma-separate: ``disable=SIM001,SIM005``);
* ``# simlint: disable-file=SIM001`` — suppress for the whole file.

Suppressions are *code-scoped only*: a bare ``# simlint: disable`` does
not parse and suppresses nothing, so a suppression always documents
which contract it is opting out of.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.lint.rules import check_source
from repro.lint.sources import iter_python_sources

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<codes>SIM\d{3}(?:\s*,\s*SIM\d{3})*)"
)

#: Directories whose modules are per-event hot paths: SIM007 (per-event
#: allocation churn) applies only here, where one extra allocation runs
#: millions of times per experiment point.
_HOT_PATH_RE = re.compile(r"(^|[/\\])(sim|flash)([/\\])")


def is_hot_path(path: "str | os.PathLike[str]") -> bool:
    """Whether ``path`` lies in a sim/flash hot-path directory."""
    return _HOT_PATH_RE.search(str(path)) is not None


@dataclass(frozen=True)
class Finding:
    """One reported violation, ready to print."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: " \
               f"{self.code} {self.message}"


def parse_suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """(file-wide codes, line -> codes) from suppression comments."""
    file_codes: Set[str] = set()
    line_codes: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "simlint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {c.strip() for c in match.group("codes").split(",")}
        if match.group("scope"):
            file_codes |= codes
        else:
            line_codes.setdefault(lineno, set()).update(codes)
    return file_codes, line_codes


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one source string; suppression comments already applied."""
    raw, parsed_ok = check_source(source, hot_path=is_hot_path(path))
    if not parsed_ok:
        return [Finding(path, raw[0].line, raw[0].col,
                        raw[0].code, raw[0].message)]
    file_codes, line_codes = parse_suppressions(source)
    findings = [
        Finding(path, f.line, f.col, f.code, f.message)
        for f in raw
        if f.code not in file_codes
        and f.code not in line_codes.get(f.line, ())
    ]
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def lint_file(path: "str | os.PathLike[str]") -> List[Finding]:
    """Lint one file on disk."""
    target = Path(path)
    return lint_source(target.read_text(encoding="utf-8"), str(target))


def iter_python_files(
    paths: Sequence["str | os.PathLike[str]"],
) -> Iterable[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Delegates to the canonical walker in :mod:`repro.lint.sources` so
    the lint pass and the result cache's code-version salt agree on
    what a python source is (``__pycache__`` and friends excluded).
    """
    return iter_python_sources(paths)


def lint_paths(paths: Sequence["str | os.PathLike[str]"]) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for target in iter_python_files(paths):
        findings.extend(lint_file(target))
    return findings


def lint_tree(
    paths: Sequence["str | os.PathLike[str]"],
) -> Tuple[List[Finding], List[Tuple[str, float]]]:
    """Full analysis: per-module rules plus the whole-program pass.

    Returns ``(findings, timings)`` where ``timings`` is a list of
    ``(label, seconds)`` pairs — one entry for the per-module rules and
    one per whole-program rule — so the CI job can assert the pass
    stays fast.  Suppression comments apply uniformly: a whole-program
    finding is silenced by the same ``# simlint: disable=SIM008`` on
    its line (or ``disable-file=``) as a per-module one.
    """
    import time as _time  # host-side tooling; not simulation state

    from repro.lint.callgraph import Project
    from repro.lint.dataflow import analyze_project

    started = _time.perf_counter()  # simlint: disable=SIM001
    findings = lint_paths(paths)
    timings: List[Tuple[str, float]] = [
        ("per-module", _time.perf_counter() - started)  # simlint: disable=SIM001
    ]

    project = Project.build(paths)
    raw, rule_timings = analyze_project(project)
    timings.extend(rule_timings)

    suppression_cache: Dict[str, Tuple[Set[str], Dict[int, Set[str]]]] = {}
    for item in raw:
        if item.path not in suppression_cache:
            try:
                source = Path(item.path).read_text(encoding="utf-8")
            except OSError:
                source = ""
            suppression_cache[item.path] = parse_suppressions(source)
        file_codes, line_codes = suppression_cache[item.path]
        if item.code in file_codes or \
                item.code in line_codes.get(item.line, ()):
            continue
        findings.append(Finding(item.path, item.line, item.col,
                                item.code, item.message))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, timings


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary.

    The summary line leads with the total and appends per-rule hit
    counts (``[SIM001×2 SIM008×1]``) so a long report still answers
    "which contract is being violated" at a glance.
    """
    if not findings:
        return "simlint: clean"
    lines = [finding.render() for finding in findings]
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    by_rule = " ".join(
        f"{code}×{n}" for code, n in sorted(counts.items())
    )
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"simlint: {len(findings)} {noun} [{by_rule}]")
    return "\n".join(lines)


def to_sarif(findings: Sequence[Finding]) -> Dict[str, object]:
    """Findings as a SARIF 2.1.0 log (GitHub inline PR annotations)."""
    from repro.lint.rules import RULES

    used = sorted({finding.code for finding in findings})
    rules = [
        {
            "id": code,
            "shortDescription": {"text": RULES.get(code, code)},
            "defaultConfiguration": {"level": "error"},
        }
        for code in used
    ]
    rule_index = {code: i for i, code in enumerate(used)}
    results = [
        {
            "ruleId": finding.code,
            "ruleIndex": rule_index[finding.code],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace(os.sep, "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        for finding in findings
    ]
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "informationUri":
                        "https://example.invalid/simlint",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
