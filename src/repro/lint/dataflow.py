"""Whole-program determinism dataflow: the SIM008–SIM012 rules.

Built on the :mod:`repro.lint.callgraph` symbol table, this module runs
a forward taint analysis from *nondeterminism sources* (wall clocks,
``os.urandom``, unseeded ``random.Random()``, ``os.environ``, ``id()``,
``hash()``) through assignments, returns, and resolved calls into
*determinism sinks* (fields of ``*Result``/``*Stats``/``*Spec``
dataclasses, event timestamps, cache keys), plus four sibling
whole-program checks that reuse the same call graph.

Soundness posture (see DESIGN.md §15): the taint engine is
flow-insensitive within a function and summary-based across functions —
it over-approximates (a tainted value poisons every name it is ever
assigned to) but under-approximates dynamic dispatch (calls through
arbitrary object attributes propagate taint from their receiver and
arguments, not from the unseen callee body).  Both directions are
deliberate: over-approximation is what suppression comments are for,
and the missed-dispatch surface is exactly the one the runtime
sanitizer (:mod:`repro.lint.sanitizer`) covers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import CallSite, FunctionInfo, Project
from repro.lint.rules import _RANDOM_MODULE_FUNCS, _WALL_CLOCK_TIME_FUNCS

#: Resolved qualnames whose call result is nondeterministic.
_SOURCE_CALLS: Dict[str, str] = {}
for _fn in _WALL_CLOCK_TIME_FUNCS:
    _SOURCE_CALLS[f"time.{_fn}"] = f"wall-clock time.{_fn}()"
for _fn in _RANDOM_MODULE_FUNCS:
    _SOURCE_CALLS[f"random.{_fn}"] = f"global RNG random.{_fn}()"
_SOURCE_CALLS.update({
    "datetime.datetime.now": "wall-clock datetime.now()",
    "datetime.datetime.utcnow": "wall-clock datetime.utcnow()",
    "datetime.datetime.today": "wall-clock datetime.today()",
    "datetime.date.today": "wall-clock date.today()",
    "os.urandom": "os.urandom()",
    "os.getenv": "environment read os.getenv()",
    "os.getpid": "process id os.getpid()",
    "uuid.uuid1": "uuid.uuid1()",
    "uuid.uuid4": "uuid.uuid4()",
    "secrets.token_bytes": "secrets.token_bytes()",
    "secrets.token_hex": "secrets.token_hex()",
})

#: Builtins whose value depends on interpreter/object identity.
_SOURCE_BUILTINS = {
    "id": "object identity id()",
    "hash": "PYTHONHASHSEED-dependent hash()",
}

#: Class-name suffixes marking a determinism sink (result carriers).
_SINK_CLASS_SUFFIXES = ("Result", "Stats", "Spec")

#: Terminal call names that schedule simulation events; a tainted delay
#: or timestamp here corrupts the event order itself.
_EVENT_SINK_NAMES = frozenset({"timeout", "_schedule"})

#: Resolved qualname suffixes that feed the result-cache key.
_CACHE_SINK_SUFFIXES = (".point_key", ".canonical")

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard",
})

#: Builtin consumers for which iteration order cannot matter.
_ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "set", "frozenset", "sorted", "min", "max", "sum", "len", "any", "all",
})

#: Frozen-dataclass name suffixes that ride into the result-cache key
#: (sweep points and the config objects passed as their kwargs).  The
#: SIM011 annotation check applies only to these; a frozen dataclass
#: that never meets the cache may hold whatever it likes.
_CACHE_CARRIER_SUFFIXES = ("Spec", "Point", "Scenario", "Config")

#: Annotation terminal names exec/cache.canonical cannot serialize.
_UNCANONICAL_ANNOTATIONS = frozenset({
    "set", "Set", "frozenset", "FrozenSet", "MutableSet",
    "Callable", "Iterator", "Iterable", "Generator",
})


# ---------------------------------------------------------------------------
# Taint values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Taint:
    """Provenance of one nondeterministic value."""

    #: Human description of the source, e.g. ``"wall-clock time.time()"``.
    source: str
    #: (path, line) of the source expression.
    site: Tuple[str, int]
    #: Function qualnames the value flowed through, source-first.
    chain: Tuple[str, ...] = ()

    def via(self, qualname: str) -> "Taint":
        if self.chain and self.chain[-1] == qualname:
            return self
        return Taint(self.source, self.site, self.chain + (qualname,))

    def describe_chain(self) -> str:
        return " -> ".join(self.chain) if self.chain else "this function"


@dataclass(frozen=True)
class TV:
    """Taint lattice value: real provenance and/or parameter origins."""

    real: Optional[Taint] = None
    params: FrozenSet[int] = frozenset()

    def __or__(self, other: "TV") -> "TV":
        return TV(self.real or other.real, self.params | other.params)

    @property
    def clean(self) -> bool:
        return self.real is None and not self.params


_CLEAN = TV()


@dataclass
class Summary:
    """What a function does with taint, as seen from call sites."""

    #: Taint the return value always carries (from internal sources).
    returns: Optional[Taint] = None
    #: Parameter positions that flow into the return value.
    param_flow: FrozenSet[int] = frozenset()

    def key(self) -> Tuple[Optional[Tuple[str, Tuple[str, int]]], FrozenSet[int]]:
        real = (self.returns.source, self.returns.site) \
            if self.returns else None
        return (real, self.param_flow)


@dataclass(frozen=True)
class ProjectFinding:
    """A whole-program finding, carrying its file path."""

    path: str
    line: int
    col: int
    code: str
    message: str


# ---------------------------------------------------------------------------
# Per-function taint evaluation
# ---------------------------------------------------------------------------


class _FunctionTaint:
    """Flow-insensitive taint pass over one function body."""

    def __init__(
        self,
        project: Project,
        info: FunctionInfo,
        summaries: Dict[str, Summary],
    ) -> None:
        self.project = project
        self.info = info
        self.resolver = project.resolver(info.module)
        self.summaries = summaries
        self.params = info.param_names
        self.param_index = {name: i for i, name in enumerate(self.params)}
        self.tainted: Dict[str, TV] = {}
        #: Local name -> project class qualname it was constructed from.
        self.var_types: Dict[str, str] = {}
        self.returns = TV()
        self.findings: List[ProjectFinding] = []

    # -- expression evaluation ----------------------------------------

    def eval(self, node: Optional[ast.expr]) -> TV:
        if node is None or isinstance(node, ast.Constant):
            return _CLEAN
        if isinstance(node, ast.Name):
            tv = self.tainted.get(node.id, _CLEAN)
            if node.id in self.param_index:
                tv = tv | TV(params=frozenset({self.param_index[node.id]}))
            return tv
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            resolved = self.resolver.resolve_expr(
                node, self.info.class_name
            )
            if resolved == "os.environ":
                return TV(real=self._taint("environment read os.environ",
                                           node))
            return self.eval(node.value)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value) | self.eval(node.slice)
        if isinstance(node, (ast.BinOp,)):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out = _CLEAN
            for value in node.values:
                out = out | self.eval(value)
            return out
        if isinstance(node, ast.Compare):
            out = self.eval(node.left)
            for comparator in node.comparators:
                out = out | self.eval(comparator)
            return out
        if isinstance(node, ast.IfExp):
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.JoinedStr):
            out = _CLEAN
            for value in node.values:
                out = out | self.eval(value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = _CLEAN
            for elt in node.elts:
                out = out | self.eval(elt)
            return out
        if isinstance(node, ast.Dict):
            out = _CLEAN
            for key in node.keys:
                out = out | self.eval(key)
            for value in node.values:
                out = out | self.eval(value)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = _CLEAN
            for gen in node.generators:
                out = out | self.eval(gen.iter)
            return out | self.eval(node.elt)
        if isinstance(node, ast.DictComp):
            out = _CLEAN
            for gen in node.generators:
                out = out | self.eval(gen.iter)
            return out | self.eval(node.key) | self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            tv = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self._merge(node.target.id, tv)
            return tv
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return self.eval(node.value) if node.value is not None else _CLEAN
        return _CLEAN

    def _taint(self, source: str, node: ast.AST) -> Taint:
        return Taint(
            source=source,
            site=(self.info.path, getattr(node, "lineno", 1)),
            chain=(self.info.qualname,),
        )

    def _eval_call(self, node: ast.Call) -> TV:
        resolved = self.resolver.resolve_call(node, self.info.class_name)
        func = node.func

        # -- nondeterminism sources -----------------------------------
        if resolved in _SOURCE_CALLS:
            return TV(real=self._taint(_SOURCE_CALLS[resolved], node))
        if resolved in ("random.Random", "random.SystemRandom"):
            if resolved.endswith("SystemRandom") or (
                not node.args and not node.keywords
            ):
                return TV(real=self._taint(
                    f"unseeded {resolved.split('.')[-1]}()", node))
            return _CLEAN  # a seeded Random is deterministic
        if (isinstance(func, ast.Name) and func.id in _SOURCE_BUILTINS
                and self.resolver.resolve_name(func.id) is None):
            return TV(real=self._taint(_SOURCE_BUILTINS[func.id], node))

        arg_tvs = [self.eval(arg) for arg in node.args]
        kw_tvs = {kw.arg: self.eval(kw.value) for kw in node.keywords}

        # -- sink checks ----------------------------------------------
        self._check_sinks(node, resolved, arg_tvs, kw_tvs)

        # -- project-call summaries -----------------------------------
        target = resolved
        if target is not None and target in self.project.classes:
            target = self.project.classes[target].methods.get("__init__")
        if target is not None and target in self.summaries:
            summary = self.summaries[target]
            out = _CLEAN
            if summary.returns is not None:
                out = out | TV(
                    real=summary.returns.via(self.info.qualname)
                )
            if summary.param_flow:
                callee_info = self.project.functions[target]
                offset = 1 if (
                    callee_info.is_method
                    and isinstance(func, ast.Attribute)
                ) else 0
                callee_params = callee_info.param_names
                for position, tv in enumerate(arg_tvs):
                    if position + offset in summary.param_flow:
                        out = self._flow_through(out, tv, target)
                for name, tv in kw_tvs.items():
                    if name in callee_params and \
                            callee_params.index(name) in summary.param_flow:
                        out = self._flow_through(out, tv, target)
            return out

        # -- unresolved / external calls: conservative propagation ----
        out = _CLEAN
        if isinstance(func, ast.Attribute):
            # A method on a tainted object (e.g. an unseeded RNG)
            # returns tainted values.
            out = out | self.eval(func.value)
        for tv in arg_tvs:
            out = out | tv
        for tv in kw_tvs.values():
            out = out | tv
        return out

    def _flow_through(self, acc: TV, tv: TV, callee: str) -> TV:
        if tv.real is not None:
            acc = acc | TV(real=tv.real.via(callee).via(self.info.qualname))
        return acc | TV(params=tv.params)

    # -- sinks ---------------------------------------------------------

    def _sink_class(self, qualname: Optional[str]) -> Optional[str]:
        if qualname is None or qualname not in self.project.classes:
            return None
        name = qualname.rsplit(".", 1)[-1]
        if name.endswith(_SINK_CLASS_SUFFIXES):
            return name
        return None

    def _check_sinks(
        self,
        node: ast.Call,
        resolved: Optional[str],
        arg_tvs: Sequence[TV],
        kw_tvs: Dict[Optional[str], TV],
    ) -> None:
        func = node.func

        sink_name = self._sink_class(resolved)
        if sink_name is not None:
            for position, tv in enumerate(arg_tvs):
                if tv.real is not None:
                    self._emit_sim008(
                        node, tv.real,
                        f"constructor argument {position} of {sink_name}",
                    )
            for name, tv in kw_tvs.items():
                if tv.real is not None:
                    self._emit_sim008(
                        node, tv.real,
                        f"field {name!r} of {sink_name}",
                    )

        terminal = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if terminal in _EVENT_SINK_NAMES:
            for tv in list(arg_tvs) + list(kw_tvs.values()):
                if tv.real is not None:
                    self._emit_sim008(
                        node, tv.real,
                        f"event-schedule call .{terminal}(...)",
                    )
        if resolved is not None and resolved.endswith(_CACHE_SINK_SUFFIXES):
            for tv in list(arg_tvs) + list(kw_tvs.values()):
                if tv.real is not None:
                    self._emit_sim008(
                        node, tv.real,
                        f"cache-key input {resolved.rsplit('.', 1)[-1]}(...)",
                    )

    def _emit_sim008(
        self, node: ast.AST, taint: Taint, sink: str
    ) -> None:
        self.findings.append(ProjectFinding(
            path=self.info.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code="SIM008",
            message=(
                f"{taint.source} (from {taint.site[0]}:{taint.site[1]}) "
                f"reaches {sink} via {taint.describe_chain()}; results "
                "must be pure functions of the spec"
            ),
        ))

    # -- statements ----------------------------------------------------

    def _merge(self, name: str, tv: TV) -> bool:
        if tv.clean:
            return False
        old = self.tainted.get(name, _CLEAN)
        new = old | tv
        if (new.real is not None) != (old.real is not None) or \
                new.params != old.params:
            self.tainted[name] = new
            return True
        return False

    def _bind_target(self, target: ast.expr, tv: TV) -> None:
        if isinstance(target, ast.Name):
            self._merge(target.id, tv)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, tv)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, tv)
        elif isinstance(target, ast.Attribute) and tv.real is not None:
            # Attribute store on a known sink instance.
            if isinstance(target.value, ast.Name):
                cls = self.var_types.get(target.value.id)
                sink_name = self._sink_class(cls)
                if sink_name is not None:
                    self._emit_sim008(
                        target, tv.real,
                        f"field {target.attr!r} of {sink_name}",
                    )

    def _record_type(self, target: ast.expr, value: ast.expr) -> None:
        if not (isinstance(target, ast.Name) and isinstance(value, ast.Call)):
            return
        resolved = self.resolver.resolve_call(value, self.info.class_name)
        if resolved is not None and resolved in self.project.classes:
            self.var_types[target.id] = resolved

    def run(self) -> Summary:
        body = self.info.node.body
        # Flow-insensitive fixpoint: assignments can feed earlier lines
        # (loops), so re-walk until the tainted-name map stabilizes.
        for _ in range(8):
            self.findings.clear()
            before = {
                name: (tv.real is not None, tv.params)
                for name, tv in self.tainted.items()
            }
            for stmt in body:
                self._walk_stmt(stmt)
            after = {
                name: (tv.real is not None, tv.params)
                for name, tv in self.tainted.items()
            }
            if after == before:
                break
        return Summary(
            returns=self.returns.real,
            param_flow=self.returns.params,
        )

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            tv = self.eval(stmt.value)
            for target in stmt.targets:
                self._record_type(target, stmt.value)
                self._bind_target(target, tv)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                tv = self.eval(stmt.value)
                self._record_type(stmt.target, stmt.value)
                self._bind_target(stmt.target, tv)
        elif isinstance(stmt, ast.AugAssign):
            tv = self.eval(stmt.value) | self.eval(stmt.target)
            self._bind_target(stmt.target, tv)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns = self.returns | self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            tv = self.eval(stmt.iter)
            self._bind_target(stmt.target, tv)
            for inner in stmt.body + stmt.orelse:
                self._walk_stmt(inner)
        elif isinstance(stmt, (ast.While,)):
            self.eval(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._walk_stmt(inner)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._walk_stmt(inner)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tv = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, tv)
            for inner in stmt.body:
                self._walk_stmt(inner)
        elif isinstance(stmt, ast.Try):
            for inner in (stmt.body + stmt.orelse + stmt.finalbody):
                self._walk_stmt(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self._walk_stmt(inner)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self.eval(stmt.exc)
            elif isinstance(stmt, ast.Assert):
                self.eval(stmt.test)
        # Nested defs/classes are separate scopes; their bodies are
        # analyzed as their own functions (or not at all, for closures —
        # a documented under-approximation).


# ---------------------------------------------------------------------------
# The analysis driver
# ---------------------------------------------------------------------------


class DataflowAnalysis:
    """Runs the whole-program rules over a built :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.summaries: Dict[str, Summary] = {
            qual: Summary() for qual in project.functions
        }
        self.sweep_cells = self._find_sweep_cells()

    # -- shared facts --------------------------------------------------

    def _find_sweep_cells(self) -> Dict[str, CallSite]:
        """fn targets handed to SweepPoint(...), by resolved qualname."""
        cells: Dict[str, CallSite] = {}
        for caller in sorted(self.project.call_sites):
            info = self.project.functions[caller]
            resolver = self.project.resolver(info.module)
            for site in self.project.call_sites[caller]:
                fn_expr = _sweep_point_fn(site)
                if fn_expr is None:
                    continue
                target = resolver.resolve_expr(fn_expr, info.class_name)
                if target is not None and target in self.project.functions:
                    cells.setdefault(target, site)
        return cells

    # -- SIM008 --------------------------------------------------------

    def rule_sim008(self) -> List[ProjectFinding]:
        """Nondeterminism source reaches a result/stats/spec sink.

        Rationale: every figure, fingerprint, and cached sweep cell in
        this repo asserts byte-identical replay.  A wall-clock read,
        unseeded RNG draw, ``os.environ`` probe, ``id()``, or ``hash()``
        that flows — through any chain of assignments and calls — into a
        ``*Result``/``*Stats``/``*Spec`` field, an event timestamp, or a
        cache-key input silently breaks that contract.

        Bad::

            def _stamp():
                return time.time()
            def run_cell():
                return RunResult(started_us=_stamp())   # SIM008

        Good::

            def run_cell(env):
                return RunResult(started_us=env.now)    # simulated clock
        """
        for _ in range(12):
            changed = False
            for qual in sorted(self.project.functions):
                info = self.project.functions[qual]
                taint_pass = _FunctionTaint(
                    self.project, info, self.summaries
                )
                new = taint_pass.run()
                if new.key() != self.summaries[qual].key():
                    self.summaries[qual] = new
                    changed = True
            if not changed:
                break
        findings: List[ProjectFinding] = []
        for qual in sorted(self.project.functions):
            info = self.project.functions[qual]
            taint_pass = _FunctionTaint(self.project, info, self.summaries)
            taint_pass.run()
            findings.extend(taint_pass.findings)
        return findings

    # -- SIM009 --------------------------------------------------------

    def rule_sim009(self) -> List[ProjectFinding]:
        """Sweep cell (or transitive callee) reads mutated module state.

        Rationale: the exec engine's parallel==serial invariant holds
        because a cell's inputs are exactly ``(fn, kwargs, seed)``.  A
        cell that reads a module-level name some function *mutates*
        (a ``global`` rebind or in-place container mutation) sees
        whatever the current process accumulated — workers diverge from
        serial runs and from each other.

        Bad::

            _memo = {}
            def cell(n):
                if n not in _memo:          # SIM009: reads mutated state
                    _memo[n] = expensive(n)
                return _memo[n]

        Good::

            def cell(n):
                return expensive(n)         # pure function of its inputs
        """
        mutated = self._mutated_globals()
        if not mutated:
            return []
        findings: List[ProjectFinding] = []
        for cell in sorted(self.sweep_cells):
            reachable = [cell] + sorted(self.project.transitive_callees(cell))
            for qual in reachable:
                info = self.project.functions[qual]
                for name, node in sorted(
                    self._global_reads(info), key=lambda e: (
                        e[1].lineno, e[1].col_offset, e[0])
                ):
                    target = f"{info.module}.{name}"
                    if target not in mutated:
                        continue
                    findings.append(ProjectFinding(
                        path=info.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="SIM009",
                        message=(
                            f"sweep cell {cell} reads module-level mutable "
                            f"state {target!r} (via {qual}); mutated at "
                            f"{mutated[target]} — workers diverge from "
                            "serial runs"
                        ),
                    ))
        return findings

    def _mutated_globals(self) -> Dict[str, str]:
        """Module-global qualname -> 'path:line' of one mutation site."""
        mutated: Dict[str, str] = {}

        def note(module: str, name: str, path: str, node: ast.AST) -> None:
            qual = f"{module}.{name}"
            mutated.setdefault(
                qual, f"{path}:{getattr(node, 'lineno', 1)}"
            )

        for qual in sorted(self.project.functions):
            info = self.project.functions[qual]
            module = self.project.modules[info.module]
            declared_global: Set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            for node in ast.walk(info.node):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Name) and \
                                target.id in declared_global:
                            note(info.module, target.id, info.path, node)
                        elif isinstance(target, ast.Subscript) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id in module.module_globals:
                            note(info.module, target.value.id,
                                 info.path, node)
                elif isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in _MUTATOR_METHODS and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.value.id in module.module_globals:
                    note(info.module, node.func.value.id, info.path, node)
        return mutated

    def _global_reads(
        self, info: FunctionInfo
    ) -> List[Tuple[str, ast.Name]]:
        """(name, node) for loads of this module's module-level names."""
        module = self.project.modules[info.module]
        local_names: Set[str] = set(info.param_names)
        declared_global: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_names.add(target.id)
        out: List[Tuple[str, ast.Name]] = []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Name) or \
                    not isinstance(node.ctx, ast.Load):
                continue
            name = node.id
            if name not in module.module_globals:
                continue
            if name in local_names and name not in declared_global:
                continue  # shadowed by a local binding
            out.append((name, node))
        return out

    # -- SIM010 --------------------------------------------------------

    def rule_sim010(self) -> List[ProjectFinding]:
        """Unordered-container iteration feeds scheduling or output.

        Rationale: ``set``/``frozenset`` iteration order depends on
        PYTHONHASHSEED for str/bytes elements.  Iterating one to
        schedule events, build a list/tuple, or emit serialized output
        makes the event interleaving (and therefore every downstream
        figure byte) vary across interpreter launches.  Feeding a set
        into an order-insensitive consumer (``sorted``, ``sum``,
        another set) is fine.

        Bad::

            for shard in {"a", "b", "c"}:      # SIM010
                env.process(drain(shard))

        Good::

            for shard in sorted({"a", "b", "c"}):
                env.process(drain(shard))
        """
        ordered_scope = self._order_sensitive_functions()
        findings: List[ProjectFinding] = []
        for qual in sorted(ordered_scope):
            info = self.project.functions[qual]
            set_names = self._set_typed_names(info)
            for node in ast.walk(info.node):
                iters: List[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.DictComp)):
                    iters.extend(gen.iter for gen in node.generators)
                elif isinstance(node, ast.Call):
                    terminal = _call_terminal(node)
                    if terminal in ("list", "tuple") and node.args:
                        iters.append(node.args[0])
                for candidate in iters:
                    if self._is_set_expr(candidate, set_names):
                        findings.append(ProjectFinding(
                            path=info.path,
                            line=candidate.lineno,
                            col=candidate.col_offset,
                            code="SIM010",
                            message=(
                                "iteration over an unordered set feeds "
                                "event scheduling or serialized output "
                                f"(in {qual}); wrap it in sorted(...) to "
                                "pin the order"
                            ),
                        ))
        return findings

    def _order_sensitive_functions(self) -> Set[str]:
        """Functions whose iteration order can reach observable state."""
        direct: Set[str] = set()
        for qual, sites in self.project.call_sites.items():
            for site in sites:
                terminal = _call_terminal(site.node)
                if terminal in ("timeout", "schedule", "_schedule",
                                "succeed", "process", "heappush"):
                    direct.add(qual)
                    break
        out: Set[str] = set()
        for qual in self.project.functions:
            if qual in direct or \
                    self.project.transitive_callees(qual) & direct:
                out.add(qual)
        out |= self.project.reachable_from(sorted(self.sweep_cells))
        return out

    def _set_typed_names(self, info: FunctionInfo) -> Set[str]:
        """Local names (flow-insensitively) bound to set values."""
        names: Set[str] = set()
        module = self.project.modules[info.module]
        for name, value in module.module_globals.items():
            if self._is_set_literal(value):
                names.add(name)
        for _ in range(4):
            grew = False
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._is_set_expr(node.value, names):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id not in names:
                        names.add(target.id)
                        grew = True
            if not grew:
                break
        return names

    @staticmethod
    def _is_set_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _call_terminal(node) in ("set", "frozenset")
        return False

    def _is_set_expr(self, node: ast.expr, set_names: Set[str]) -> bool:
        if self._is_set_literal(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return (self._is_set_expr(node.left, set_names)
                    or self._is_set_expr(node.right, set_names))
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in ("intersection", "union", "difference",
                                  "symmetric_difference"):
                return self._is_set_expr(node.func.value, set_names)
        return False

    # -- SIM011 --------------------------------------------------------

    def rule_sim011(self) -> List[ProjectFinding]:
        """Frozen spec dataclass field invisible to cache canonicalization.

        Rationale: ``exec/cache.canonical`` hashes only ``init=True``
        fields of a dataclass and only value shapes it knows (primitives,
        bytes, enums, dataclasses, dicts, sequences).  A frozen spec
        field that escapes that — ``field(init=False)`` without
        ``compare=False``, or a ``set``/``Callable``-typed annotation —
        either drifts out of the cache key (stale hits) or fails to hash
        at all.

        Bad::

            @dataclass(frozen=True)
            class SweepCellSpec:
                n_ops: int
                mode: str = field(init=False, default="fast")   # SIM011
                excluded: set = field(default_factory=set)      # SIM011

        Good::

            @dataclass(frozen=True)
            class SweepCellSpec:
                n_ops: int
                mode: str = "fast"
                excluded: Tuple[str, ...] = ()
        """
        findings: List[ProjectFinding] = []
        for qual in sorted(self.project.classes):
            cls = self.project.classes[qual]
            if not cls.is_frozen_dataclass:
                continue
            for item in cls.node.body:
                if not isinstance(item, ast.AnnAssign) or \
                        not isinstance(item.target, ast.Name):
                    continue
                if _annotation_is_classvar(item.annotation):
                    continue
                field_name = item.target.id
                flags = _field_call_flags(item.value)
                if flags.get("init") is False and \
                        flags.get("compare") is not False:
                    findings.append(ProjectFinding(
                        path=cls.path, line=item.lineno,
                        col=item.col_offset, code="SIM011",
                        message=(
                            f"{cls.qualname.rsplit('.', 1)[-1]}."
                            f"{field_name} is init=False but still "
                            "participates in equality; exec/cache."
                            "canonical skips it, so equal-looking specs "
                            "can hash apart (mark compare=False for "
                            "derived fields, or make it an init field)"
                        ),
                    ))
                bad = _uncanonical_annotation(item.annotation)
                if bad is not None and cls.qualname.rsplit(".", 1)[-1] \
                        .endswith(_CACHE_CARRIER_SUFFIXES):
                    findings.append(ProjectFinding(
                        path=cls.path, line=item.lineno,
                        col=item.col_offset, code="SIM011",
                        message=(
                            f"{cls.qualname.rsplit('.', 1)[-1]}."
                            f"{field_name} is annotated {bad!r}, which "
                            "exec/cache.canonical cannot serialize — the "
                            "spec cannot participate in the result-cache "
                            "key (use a tuple, or justify with a "
                            "suppression)"
                        ),
                    ))
        return findings

    # -- SIM012 --------------------------------------------------------

    def rule_sim012(self) -> List[ProjectFinding]:
        """Unpicklable closure/lambda headed toward the process pool.

        Rationale: sweep points ship to worker processes by *reference*
        (module + qualname); a lambda or a function defined inside
        another function has no importable identity and dies in pickling
        — at best loudly at runtime, at worst only when ``--parallel``
        is first used in CI.  The static check catches it on the branch
        that never ran.

        Bad::

            def fig_cells(sizes):
                def cell(size):                 # nested: unpicklable
                    return run_one(size)
                return [SweepPoint(label=str(s), fn=cell)   # SIM012
                        for s in sizes]

        Good::

            def _cell(size):
                return run_one(size)
            def fig_cells(sizes):
                return [SweepPoint(label=str(s), fn=_cell,
                                   kwargs={"size": s}) for s in sizes]
        """
        findings: List[ProjectFinding] = []
        for qual in sorted(self.project.call_sites):
            info = self.project.functions[qual]
            nested = {
                child.name
                for parent in ast.walk(info.node)
                for child in ast.iter_child_nodes(parent)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not info.node
            }
            lambda_names = {
                target.id
                for node in ast.walk(info.node)
                if isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Lambda)
                for target in node.targets
                if isinstance(target, ast.Name)
            }
            for site in self.project.call_sites[qual]:
                node = site.node
                terminal = _call_terminal(node)
                candidates: List[ast.expr] = []
                if _sweep_point_fn(site) is not None:
                    fn_expr = _sweep_point_fn(site)
                    if fn_expr is not None:
                        candidates.append(fn_expr)
                elif terminal in ("submit", "apply_async"):
                    candidates.extend(node.args)
                    candidates.extend(kw.value for kw in node.keywords)
                for expr in candidates:
                    shown: Optional[str] = None
                    if isinstance(expr, ast.Lambda):
                        shown = "a lambda"
                    elif isinstance(expr, ast.Name) and (
                        expr.id in nested or expr.id in lambda_names
                    ):
                        shown = f"nested function {expr.id!r}"
                    if shown is not None:
                        findings.append(ProjectFinding(
                            path=info.path,
                            line=expr.lineno,
                            col=expr.col_offset,
                            code="SIM012",
                            message=(
                                f"{shown} passed toward the process pool "
                                f"(in {qual}); workers resolve functions "
                                "by module.qualname — use a module-level "
                                "function with kwargs"
                            ),
                        ))
        return findings


# ---------------------------------------------------------------------------
# Helpers and the public driver
# ---------------------------------------------------------------------------


def _call_terminal(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _sweep_point_fn(site: CallSite) -> Optional[ast.expr]:
    """The ``fn`` argument of a SweepPoint(...) call site, if any."""
    node = site.node
    is_sweep_point = (
        (site.callee is not None and site.callee.endswith(".SweepPoint"))
        or _call_terminal(node) == "SweepPoint"
    )
    if not is_sweep_point:
        return None
    for keyword in node.keywords:
        if keyword.arg == "fn":
            return keyword.value
    if len(node.args) >= 2:
        return node.args[1]
    return None


def _annotation_is_classvar(node: ast.expr) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id == "ClassVar"
    if isinstance(node, ast.Attribute):
        return node.attr == "ClassVar"
    return False


def _field_call_flags(node: Optional[ast.expr]) -> Dict[str, object]:
    """Keyword flags of a ``field(...)`` default, or empty."""
    if not isinstance(node, ast.Call):
        return {}
    if _call_terminal(node) != "field":
        return {}
    out: Dict[str, object] = {}
    for keyword in node.keywords:
        if keyword.arg is not None and isinstance(keyword.value, ast.Constant):
            out[keyword.arg] = keyword.value.value
    return out


def _uncanonical_annotation(node: ast.expr) -> Optional[str]:
    """First annotation component canonical() cannot handle, or None."""
    for child in ast.walk(node):
        name: Optional[str] = None
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            # String annotations: match bare names inside.
            for candidate in _UNCANONICAL_ANNOTATIONS:
                if candidate in child.value.replace("[", " ").split():
                    name = candidate
                    break
        if name in _UNCANONICAL_ANNOTATIONS:
            return name
    return None


#: Whole-program rule registry: code -> bound-method name on the analysis.
WHOLE_PROGRAM_RULES: Dict[str, str] = {
    "SIM008": "rule_sim008",
    "SIM009": "rule_sim009",
    "SIM010": "rule_sim010",
    "SIM011": "rule_sim011",
    "SIM012": "rule_sim012",
}


def rule_docstring(code: str) -> Optional[str]:
    """The rationale/example docstring of one whole-program rule."""
    method_name = WHOLE_PROGRAM_RULES.get(code)
    if method_name is None:
        return None
    return getattr(DataflowAnalysis, method_name).__doc__


def analyze_project(
    project: Project,
) -> Tuple[List[ProjectFinding], List[Tuple[str, float]]]:
    """Run every whole-program rule; returns (findings, per-rule timings)."""
    import time as _time  # host-side tooling; not simulation state

    analysis = DataflowAnalysis(project)
    findings: List[ProjectFinding] = []
    timings: List[Tuple[str, float]] = []
    for code in sorted(WHOLE_PROGRAM_RULES):
        started = _time.perf_counter()  # simlint: disable=SIM001
        rule = getattr(analysis, WHOLE_PROGRAM_RULES[code])
        findings.extend(rule())
        timings.append(
            (code, _time.perf_counter() - started)  # simlint: disable=SIM001
        )
    return findings, timings
