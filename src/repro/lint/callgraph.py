"""Project-wide symbol table and call graph for whole-program rules.

The per-module rules in :mod:`repro.lint.rules` see one file at a time;
the cross-module rules (SIM008–SIM012 in :mod:`repro.lint.dataflow`)
need to follow a value through ``a() -> b() -> c()`` across files.  This
module builds the shared substrate from the same stdlib-``ast`` parse:

* a :class:`Project` — every module under the linted paths, parsed once,
  with dotted module names derived from package structure;
* a symbol table — every module-level function, method, and class under
  a fully qualified name (``repro.cluster.run.run_cluster``,
  ``repro.sim.engine.Environment.timeout``);
* per-module :class:`Resolver` objects mapping local names through
  imports and aliases back to qualified names (project symbols resolve
  to project entries; stdlib references resolve to dotted strings like
  ``time.perf_counter`` that the taint rules pattern-match);
* a call graph — for each function, the resolved callees plus the raw
  call sites, with :meth:`Project.transitive_callees` for reachability.

Resolution is deliberately *name-based and first-order*: direct calls,
``from``-imports, module aliases, and ``self.method(...)`` within the
defining class resolve; calls through arbitrary object attributes,
dynamic dispatch, and inherited methods do not (they appear as
unresolved attribute calls, which the dataflow rules may still match by
terminal name).  DESIGN.md §15 spells out what this over- and
under-approximates.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.sources import iter_python_sources


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    path: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def param_names(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One class definition in the project."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    #: Local method name -> fully qualified method name.
    methods: Dict[str, str] = field(default_factory=dict)
    #: Terminal names of the decorator list (``dataclass`` detection).
    decorators: Tuple[str, ...] = ()
    #: Keyword flags passed to a ``@dataclass(...)`` decorator call.
    dataclass_kwargs: Dict[str, bool] = field(default_factory=dict)

    @property
    def is_dataclass(self) -> bool:
        return "dataclass" in self.decorators

    @property
    def is_frozen_dataclass(self) -> bool:
        return self.is_dataclass and self.dataclass_kwargs.get("frozen", False)


@dataclass
class ModuleInfo:
    """One parsed module plus its name-resolution environment."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: from-imported local name -> fully qualified target.
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-alias local name -> dotted module path.
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: Local function/method qualname ("f", "Cls.m") -> global qualname.
    functions: Dict[str, str] = field(default_factory=dict)
    #: Local class name -> global qualname.
    classes: Dict[str, str] = field(default_factory=dict)
    #: Module-level assigned names -> the assigned value expression.
    module_globals: Dict[str, ast.expr] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    caller: str
    #: Resolved callee qualname, or None when resolution failed.
    callee: Optional[str]
    node: ast.Call


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a dotted string, or None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path`` from its package structure.

    Walks up through directories containing ``__init__.py`` so
    ``src/repro/exec/cache.py`` names itself ``repro.exec.cache`` no
    matter which directory the walk was anchored at.  A file outside
    any package is just its stem.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py outside any package
        parts = [path.stem]
    return ".".join(reversed(parts))


class Resolver:
    """Resolve local names of one module to qualified names."""

    def __init__(self, project: "Project", module: ModuleInfo) -> None:
        self.project = project
        self.module = module

    def resolve_name(self, name: str) -> Optional[str]:
        """Qualified target of a bare local name, or None."""
        module = self.module
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        if name in module.imports:
            return module.imports[name]
        if name in module.module_aliases:
            return module.module_aliases[name]
        if name in module.module_globals:
            return f"{module.name}.{name}"
        return None

    def resolve_expr(
        self, node: ast.expr, current_class: Optional[str] = None
    ) -> Optional[str]:
        """Qualified target of a Name/Attribute chain, or None.

        ``self.m`` resolves within ``current_class`` when the class
        defines ``m``; chains rooted at a module alias append their
        attribute path (``np.random.default_rng`` ->
        ``numpy.random.default_rng``).
        """
        if isinstance(node, ast.Name):
            return self.resolve_name(node.id)
        if not isinstance(node, ast.Attribute):
            return None
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head == "self" and current_class is not None and rest:
            info = self.project.classes.get(
                f"{self.module.name}.{current_class}"
            )
            first, _, _ = rest.partition(".")
            if info is not None and first in info.methods:
                suffix = rest[len(first):]
                return info.methods[first] + suffix
            return None
        base = self.resolve_name(head)
        if base is None:
            return None
        # A from-imported *class* used as ``Cls.method`` / ``Cls.attr``
        # and a module alias used as ``mod.symbol`` compose the same way.
        return f"{base}.{rest}" if rest else base

    def resolve_call(
        self, node: ast.Call, current_class: Optional[str] = None
    ) -> Optional[str]:
        """Qualified callee of a call expression, or None."""
        return self.resolve_expr(node.func, current_class)


class Project:
    """All modules under the analyzed paths, with symbols and calls."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> resolved callee qualnames.
        self.edges: Dict[str, Set[str]] = {}
        #: caller qualname -> every call site in its body.
        self.call_sites: Dict[str, List[CallSite]] = {}
        #: Files that failed to parse (reported as SIM000 elsewhere).
        self.unparsed: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, paths: Sequence["str | os.PathLike[str]"]
    ) -> "Project":
        """Parse every python source under ``paths`` into one project."""
        project = cls()
        for path in iter_python_sources(paths):
            try:
                source = Path(path).read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, SyntaxError):
                project.unparsed.append(str(path))
                continue
            project._add_module(Path(path), source, tree)
        project._link_calls()
        return project

    def _add_module(self, path: Path, source: str, tree: ast.Module) -> None:
        name = module_name_for(path)
        module = ModuleInfo(name=name, path=str(path), tree=tree,
                            source=source)
        self.modules[name] = module
        for node in tree.body:
            self._collect_toplevel(module, node)
        # Imports can appear at any nesting level (lazy imports inside
        # functions are idiomatic here); collect them module-wide.
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    module.module_aliases.setdefault(local, target)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports.setdefault(local, f"{base}.{alias.name}")

    @staticmethod
    def _import_base(
        module: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: resolve against this module's package.
        package_parts = module.name.split(".")[:-1]
        if node.level - 1 > len(package_parts):
            return None
        if node.level > 1:
            package_parts = package_parts[: -(node.level - 1)]
        if node.module:
            package_parts = package_parts + node.module.split(".")
        return ".".join(package_parts) if package_parts else None

    def _collect_toplevel(self, module: ModuleInfo, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{module.name}.{node.name}"
            self.functions[qual] = FunctionInfo(
                qualname=qual, module=module.name, path=module.path,
                node=node,
            )
            module.functions[node.name] = qual
        elif isinstance(node, ast.ClassDef):
            qual = f"{module.name}.{node.name}"
            info = ClassInfo(
                qualname=qual, module=module.name, path=module.path,
                node=node,
                decorators=tuple(
                    name for name in (
                        _terminal_name(
                            d.func if isinstance(d, ast.Call) else d
                        )
                        for d in node.decorator_list
                    )
                    if name is not None
                ),
                dataclass_kwargs=_dataclass_kwargs(node),
            )
            self.classes[qual] = info
            module.classes[node.name] = qual
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_qual = f"{qual}.{item.name}"
                    self.functions[method_qual] = FunctionInfo(
                        qualname=method_qual, module=module.name,
                        path=module.path, node=item, class_name=node.name,
                    )
                    module.functions[f"{node.name}.{item.name}"] = method_qual
                    info.methods[item.name] = method_qual
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module.module_globals[target.id] = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                module.module_globals[node.target.id] = node.value

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------

    def resolver(self, module_name: str) -> Resolver:
        return Resolver(self, self.modules[module_name])

    def _link_calls(self) -> None:
        for qual in self.functions:
            self.edges[qual] = set()
            self.call_sites[qual] = []
        for qual, info in self.functions.items():
            resolver = self.resolver(info.module)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = resolver.resolve_call(node, info.class_name)
                if callee is not None and callee in self.classes:
                    # Instantiation: route the edge to __init__ when the
                    # class defines one, keeping the class name visible.
                    init = self.classes[callee].methods.get("__init__")
                    if init is not None:
                        self.edges[qual].add(init)
                self.call_sites[qual].append(CallSite(qual, callee, node))
                if callee is not None and callee in self.functions:
                    self.edges[qual].add(callee)

    def transitive_callees(self, root: str) -> Set[str]:
        """Every function reachable from ``root`` through resolved calls."""
        seen: Set[str] = set()
        todo = [root]
        while todo:
            current = todo.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    todo.append(callee)
        return seen

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Union of roots and their transitive callees."""
        out: Set[str] = set()
        for root in roots:
            if root in self.functions:
                out.add(root)
                out |= self.transitive_callees(root)
        return out

    def format_graph(self) -> str:
        """Debug dump: one ``caller -> callee`` line per resolved edge."""
        lines = []
        for caller in sorted(self.edges):
            for callee in sorted(self.edges[caller]):
                lines.append(f"{caller} -> {callee}")
        header = (
            f"# call graph: {len(self.functions)} functions, "
            f"{sum(len(v) for v in self.edges.values())} resolved edges, "
            f"{len(self.modules)} modules"
        )
        return "\n".join([header] + lines)


def _dataclass_kwargs(node: ast.ClassDef) -> Dict[str, bool]:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if _terminal_name(decorator.func) != "dataclass":
            continue
        out: Dict[str, bool] = {}
        for keyword in decorator.keywords:
            if keyword.arg is not None and isinstance(
                keyword.value, ast.Constant
            ) and isinstance(keyword.value.value, bool):
                out[keyword.arg] = keyword.value.value
        return out
    return {}
