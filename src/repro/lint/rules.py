"""The SIM rules, implemented as one two-pass AST checker.

Pass 1 (:meth:`ModuleChecker._collect`) records module facts the rules
need: which local names are bound to the ``time`` / ``datetime`` /
``random`` modules, which functions and methods are generators, and
which call expressions appear as ``with``-statement context managers.
Pass 2 walks the tree again and emits :class:`RawFinding` tuples; the
engine layer applies suppression comments and attaches file paths.

Each rule is deliberately *repo-shaped* rather than general: SIM003
only flags calls it can prove target a generator defined in the same
module (bare ``foo(...)`` statements, or ``self.foo(...)`` where the
enclosing class defines ``foo`` as a generator), because that is the
silent no-op the simulator actually suffers from, and the restriction
keeps the false-positive rate at zero on real code.
"""

from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

#: Rule catalog: code -> one-line description (shown by ``--list-rules``).
RULES: Dict[str, str] = {
    "SIM000": "file does not parse (syntax error)",
    "SIM001": "wall-clock read in model code; the only clock is "
              "Environment.now",
    "SIM002": "module-level random.* call or unseeded random.Random(); "
              "thread a seeded instance through config",
    "SIM003": "generator model function called as a bare statement — "
              "a silent no-op; wrap in env.process(...) or yield from it",
    "SIM004": "== / != on simulated timestamps; use the units.py "
              "tolerance helpers (times_equal)",
    "SIM005": "mutable or call-expression default argument (shared "
              "across calls / instances)",
    "SIM006": "Span.phase(...) outside a with statement; phases must "
              "be context-managed so they keep tiling op latency",
    "SIM007": "per-event allocation on a sim/flash hot path: tuple "
              "packed into heappush, or lambda closure handed to a "
              "schedule call",
    # SIM008–SIM012 are whole-program rules: they need the project-wide
    # call graph and taint engine in repro.lint.{callgraph,dataflow}
    # and fire only when linting a tree (repro lint), never from the
    # single-file check_source path.
    "SIM008": "nondeterminism source (wall clock, unseeded RNG, "
              "os.environ, id/hash) flows through the call graph into "
              "a Result/Stats/Spec field, event timestamp, or cache key",
    "SIM009": "sweep cell (or a transitive callee) reads module-level "
              "mutable state; parallel workers diverge from serial runs",
    "SIM010": "iteration over an unordered set feeds event scheduling "
              "or serialized output; order varies with PYTHONHASHSEED",
    "SIM011": "frozen spec dataclass field invisible to exec/cache "
              "canonicalization (init=False without compare=False, or "
              "an unserializable annotation on a cache-carrier class)",
    "SIM012": "lambda or nested function handed toward the process "
              "pool; workers resolve functions by module.qualname",
}

#: ``time`` module functions that read the host clock.
_WALL_CLOCK_TIME_FUNCS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    "clock_gettime", "clock_gettime_ns",
})

#: ``datetime`` / ``date`` classmethods that read the host clock.
_DATETIME_FACTORIES = frozenset({"now", "utcnow", "today"})

#: ``random`` module-level functions backed by the shared global RNG.
_RANDOM_MODULE_FUNCS = frozenset({
    "seed", "random", "uniform", "randint", "randrange", "randbytes",
    "choice", "choices", "shuffle", "sample", "getrandbits",
    "gauss", "normalvariate", "lognormvariate", "expovariate",
    "vonmisesvariate", "gammavariate", "betavariate", "paretovariate",
    "weibullvariate", "triangular",
})

#: Name suffixes that mark a variable as a simulated timestamp.
_TIMESTAMP_SUFFIXES = ("_us", "_ts")

_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set,
    ast.ListComp, ast.DictComp, ast.SetComp, ast.GeneratorExp,
)

#: Constructor calls in defaults that build immutable values — sharing
#: one across calls is harmless (e.g. ``float("inf")``).
_IMMUTABLE_CONSTRUCTORS = frozenset({
    "float", "int", "str", "bytes", "bool", "complex", "tuple",
    "frozenset",
})


class RawFinding(NamedTuple):
    """One violation before suppression filtering: (line, col, code, msg)."""

    line: int
    col: int
    code: str
    message: str


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_generator_def(fn: ast.AST) -> bool:
    """True if *fn* (a FunctionDef) yields at its own nesting level."""
    todo: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # a nested def's yields belong to the nested def
        todo.extend(ast.iter_child_nodes(node))
    return False


def _decorator_is_dataclass(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    return _terminal_name(target) == "dataclass"


class ModuleChecker(ast.NodeVisitor):
    """Run all SIM rules over one parsed module."""

    def __init__(self, tree: ast.Module, hot_path: bool = False) -> None:
        self.tree = tree
        #: Whether this module sits on a sim/flash hot path (SIM007 scope).
        self.hot_path = hot_path
        self.findings: List[RawFinding] = []
        # Pass-1 facts.
        self.time_aliases: Set[str] = set()
        self.wallclock_names: Set[str] = set()
        self.datetime_aliases: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.random_aliases: Set[str] = set()
        self.random_funcs: Set[str] = set()
        self.random_classes: Set[str] = set()
        self.module_generators: Set[str] = set()
        self.class_generators: Dict[str, Set[str]] = {}
        self.with_contexts: Set[int] = set()
        # Pass-2 state.
        self._class_stack: List[str] = []

    def run(self) -> List[RawFinding]:
        self._collect()
        self.visit(self.tree)
        return self.findings

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(RawFinding(
            getattr(node, "lineno", 1), getattr(node, "col_offset", 0),
            code, message,
        ))

    # ------------------------------------------------------------------
    # Pass 1: module facts
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self.time_aliases.add(local)
                    elif alias.name == "datetime":
                        self.datetime_aliases.add(local)
                    elif alias.name == "random":
                        self.random_aliases.add(local)
            elif isinstance(node, ast.ImportFrom):
                self._collect_import_from(node)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    self.with_contexts.add(id(item.context_expr))
        # Generator defs, by scope.
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_generator_def(node):
                    self.module_generators.add(node.name)
            elif isinstance(node, ast.ClassDef):
                gens = {
                    item.name for item in node.body
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
                    and _is_generator_def(item)
                }
                if gens:
                    self.class_generators[node.name] = gens

    def _collect_import_from(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_TIME_FUNCS:
                    self.wallclock_names.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_classes.add(alias.asname or alias.name)
        elif node.module == "random":
            for alias in node.names:
                local = alias.asname or alias.name
                if alias.name in _RANDOM_MODULE_FUNCS:
                    self.random_funcs.add(local)
                elif alias.name in ("Random", "SystemRandom"):
                    self.random_classes.add(local)

    # ------------------------------------------------------------------
    # Pass 2: rule checks
    # ------------------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if any(_decorator_is_dataclass(d) for d in node.decorator_list):
            self._check_dataclass_defaults(node)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_signature_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_signature_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_signature_defaults(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_wall_clock(node)
        self._check_randomness(node)
        self._check_phase_context(node)
        if self.hot_path:
            self._check_hot_path_allocation(node)
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        self._check_dropped_generator(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self._check_timestamp_equality(node)
        self.generic_visit(node)

    # -- SIM001 --------------------------------------------------------

    def _check_wall_clock(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.wallclock_names:
            self._emit(node, "SIM001",
                       f"wall-clock call {func.id}(); simulation code "
                       "must read Environment.now")
            return
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        if (isinstance(value, ast.Name) and value.id in self.time_aliases
                and func.attr in _WALL_CLOCK_TIME_FUNCS):
            self._emit(node, "SIM001",
                       f"wall-clock call {value.id}.{func.attr}(); "
                       "simulation code must read Environment.now")
            return
        if func.attr in _DATETIME_FACTORIES:
            # datetime.now() / date.today() via from-import ...
            if (isinstance(value, ast.Name)
                    and value.id in self.datetime_classes):
                self._emit(node, "SIM001",
                           f"wall-clock call {value.id}.{func.attr}(); "
                           "simulation code must read Environment.now")
            # ... or datetime.datetime.now() via module import.
            elif (isinstance(value, ast.Attribute)
                    and value.attr in ("datetime", "date")
                    and isinstance(value.value, ast.Name)
                    and value.value.id in self.datetime_aliases):
                self._emit(node, "SIM001",
                           f"wall-clock call "
                           f"{value.value.id}.{value.attr}.{func.attr}(); "
                           "simulation code must read Environment.now")

    # -- SIM002 --------------------------------------------------------

    def _check_randomness(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.random_funcs:
                self._emit(node, "SIM002",
                           f"module-level RNG call {func.id}(); use a "
                           "seeded random.Random instance from config")
            elif func.id in self.random_classes:
                self._check_rng_seeded(node, func.id)
            return
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        if not (isinstance(value, ast.Name)
                and value.id in self.random_aliases):
            return
        if func.attr in _RANDOM_MODULE_FUNCS:
            self._emit(node, "SIM002",
                       f"module-level RNG call {value.id}.{func.attr}(); "
                       "use a seeded random.Random instance from config")
        elif func.attr in ("Random", "SystemRandom"):
            self._check_rng_seeded(node, f"{value.id}.{func.attr}")

    def _check_rng_seeded(self, node: ast.Call, shown: str) -> None:
        if shown.endswith("SystemRandom"):
            self._emit(node, "SIM002",
                       f"{shown}() is never deterministic; use a seeded "
                       "random.Random instance from config")
        elif not node.args and not node.keywords:
            self._emit(node, "SIM002",
                       f"unseeded {shown}(); pass an explicit seed "
                       "threaded through config")

    # -- SIM003 --------------------------------------------------------

    def _check_dropped_generator(self, node: ast.Expr) -> None:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        name: Optional[str] = None
        if isinstance(func, ast.Name) and func.id in self.module_generators:
            name = func.id
        elif (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self._class_stack
                and func.attr in self.class_generators.get(
                    self._class_stack[-1], ())):
            name = f"self.{func.attr}"
        if name is not None:
            self._emit(node, "SIM003",
                       f"{name}(...) builds a generator that is never "
                       "started — wrap it in env.process(...) or yield "
                       "from it")

    # -- SIM004 --------------------------------------------------------

    def _check_timestamp_equality(self, node: ast.Compare) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for operand in (node.left, *node.comparators):
            if self._is_timestamp_expr(operand):
                shown = _terminal_name(operand) or "timestamp"
                self._emit(node, "SIM004",
                           f"exact equality on simulated timestamp "
                           f"{shown!r}; use the units.py tolerance "
                           "helpers (times_equal)")
                return

    @staticmethod
    def _is_timestamp_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "now":
            return True
        name = _terminal_name(node)
        return name is not None and name.endswith(_TIMESTAMP_SUFFIXES)

    # -- SIM005 --------------------------------------------------------

    def _check_signature_defaults(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, _MUTABLE_LITERALS):
                self._emit(default, "SIM005",
                           "mutable literal default argument is shared "
                           "across calls; default to None and build "
                           "inside the function")
            elif (isinstance(default, ast.Call)
                    and _terminal_name(default.func)
                    not in _IMMUTABLE_CONSTRUCTORS):
                shown = _terminal_name(default.func) or "call"
                self._emit(default, "SIM005",
                           f"call-expression default {shown}(...) is "
                           "evaluated once at def time and shared across "
                           "calls; default to None and build inside the "
                           "function")

    def _check_dataclass_defaults(self, node: ast.ClassDef) -> None:
        for item in node.body:
            # Only annotated assignments are dataclass fields; a plain
            # ``NAME = ...`` in the body is a class constant.  ClassVar
            # annotations are likewise shared on purpose.
            if not isinstance(item, ast.AnnAssign) or item.value is None:
                continue
            if _terminal_name(item.annotation) == "ClassVar" or (
                    isinstance(item.annotation, ast.Subscript)
                    and _terminal_name(item.annotation.value) == "ClassVar"):
                continue
            value = item.value
            if isinstance(value, _MUTABLE_LITERALS):
                self._emit(value, "SIM005",
                           "mutable dataclass field default is shared "
                           "across instances; use "
                           "field(default_factory=...)")
            elif (isinstance(value, ast.Call)
                    and _terminal_name(value.func) != "field"
                    and _terminal_name(value.func)
                    not in _IMMUTABLE_CONSTRUCTORS):
                shown = _terminal_name(value.func) or "call"
                self._emit(value, "SIM005",
                           f"dataclass field default {shown}(...) is "
                           "evaluated once at class-definition time and "
                           "shared across instances; use "
                           "field(default_factory=...)")

    # -- SIM006 --------------------------------------------------------

    def _check_phase_context(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "phase"
                and id(node) not in self.with_contexts):
            self._emit(node, "SIM006",
                       ".phase(...) outside a with statement; a phase "
                       "only tiles op latency when context-managed")

    # -- SIM007 --------------------------------------------------------

    def _check_hot_path_allocation(self, node: ast.Call) -> None:
        """Flag per-event allocation churn on sim/flash hot paths.

        Two patterns the hot-path refactor removed and the rule keeps
        out: packing a fresh tuple into ``heappush`` on every schedule,
        and handing a lambda closure to a schedule/callback call (one
        closure object per event).  Deliberate exceptions carry a
        line-level ``# simlint: disable=SIM007`` explaining themselves.
        """
        func = node.func
        name = _terminal_name(func)
        if name == "heappush" and any(
                isinstance(arg, ast.Tuple) for arg in node.args):
            self._emit(node, "SIM007",
                       "tuple packed into heappush per event; reuse the "
                       "scheduled entry (or justify with a line "
                       "suppression) to keep schedule allocation-free")
            return
        takes_callback = (
            name is not None and "schedule" in name.lower()
        ) or (
            name == "append"
            and isinstance(func, ast.Attribute)
            and _terminal_name(func.value) == "callbacks"
        )
        if takes_callback:
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            if any(isinstance(arg, ast.Lambda) for arg in arguments):
                shown = name if name != "append" else "callbacks.append"
                self._emit(node, "SIM007",
                           f"lambda closure passed to {shown}(...) "
                           "allocates per event; bind a method or reuse "
                           "a callable instead")


def check_module(tree: ast.Module, hot_path: bool = False) -> List[RawFinding]:
    """All SIM findings for one parsed module, unsuppressed."""
    return ModuleChecker(tree, hot_path=hot_path).run()


def check_source(
    source: str, hot_path: bool = False
) -> Tuple[List[RawFinding], bool]:
    """Parse and check; returns (findings, parsed_ok)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [RawFinding(exc.lineno or 1, (exc.offset or 1) - 1,
                           "SIM000", f"syntax error: {exc.msg}")], False
    return check_module(tree, hot_path=hot_path), True
