"""The canonical "python sources" walker.

Two subsystems walk the source tree and must agree on what counts as a
python source file: the lint engine (which files get analyzed) and the
result cache's code-version salt (which files invalidate cached sweep
results when edited).  If they disagree — one picks up a stray ``.py``
inside ``__pycache__`` or an editor backup directory and the other does
not — the cache can hold results for a tree the analysis never saw, or
vice versa.  Both therefore route through this module.

The contract: a python source is a ``*.py`` file none of whose path
components is a cache/VCS artifact directory (``__pycache__``,
``.git``, egg-info) or hidden (dot-prefixed) directory.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, List, Sequence, Set

#: Directory names whose contents are never python *sources* — bytecode
#: caches, VCS metadata, packaging artifacts.
EXCLUDED_DIR_NAMES = frozenset({"__pycache__", ".git", ".hg", ".svn"})


def _component_excluded(name: str) -> bool:
    return (
        name in EXCLUDED_DIR_NAMES
        or name.endswith(".egg-info")
        or (name.startswith(".") and name not in (".", ".."))
    )


def is_python_source(path: "str | os.PathLike[str]") -> bool:
    """Whether ``path`` names a python source file (by path shape alone)."""
    target = Path(path)
    if target.suffix != ".py":
        return False
    return not any(_component_excluded(part) for part in target.parts[:-1])


def walk_python_sources(root: "str | os.PathLike[str]") -> List[Path]:
    """All python sources under directory ``root``, sorted by path.

    Exclusion applies only to components *below* ``root``: callers may
    legitimately anchor a walk inside a hidden directory (a checkout
    under ``.cache``, say) without the root's own name vetoing it.
    """
    base = Path(root)
    out = [
        path
        for path in sorted(base.rglob("*.py"))
        if not any(
            _component_excluded(part)
            for part in path.relative_to(base).parts[:-1]
        )
    ]
    return out


def iter_python_sources(
    paths: Sequence["str | os.PathLike[str]"],
) -> Iterable[Path]:
    """Expand files/directories into a de-duplicated python-source list.

    Directories are walked with :func:`walk_python_sources`; explicit
    file arguments are kept as given (linting a file the user named is
    never second-guessed), preserving first-seen order across entries.
    """
    seen: Set[Path] = set()
    out: List[Path] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            candidates = walk_python_sources(root)
        else:
            candidates = [root]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
    return out
