"""``python -m repro.lint [paths...]`` — standalone simlint entry point.

Exit status 0 when clean, 1 when there are findings (or a file fails
to parse).  ``repro lint`` in the main CLI routes here.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.engine import format_findings, lint_paths
from repro.lint.rules import RULES

#: Default lint target when no paths are given (repo-relative).
DEFAULT_PATHS = ("src/repro",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simlint: simulation-correctness static analysis "
                    "(SIM001-SIM006)",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS), metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    findings = lint_paths(args.paths)
    print(format_findings(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
