"""``python -m repro.lint [paths...]`` — standalone simlint entry point.

Exit status 0 when clean, 1 when there are findings (or a file fails
to parse).  ``repro lint`` in the main CLI routes here.

Beyond the plain report, the entry point exposes the whole-program
machinery directly:

* ``--sarif [FILE]`` writes a SARIF 2.1.0 log (GitHub renders it as
  inline PR annotations);
* ``--graph`` dumps the resolved call graph instead of linting;
* ``--explain SIM008`` prints a rule's rationale with minimal bad/good
  examples, sourced from the rule implementation's docstring;
* ``--timings`` appends per-rule wall times so CI can watch the
  whole-program pass stay fast.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.lint.engine import format_findings, lint_tree, to_sarif
from repro.lint.rules import RULES

#: Default lint target when no paths are given (repo-relative).
DEFAULT_PATHS = ("src/repro",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simlint: simulation-correctness static analysis "
                    "(per-module SIM001-SIM007 plus whole-program "
                    "SIM008-SIM012)",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS), metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--explain", metavar="CODE",
        help="print one rule's rationale and bad/good examples, then exit",
    )
    parser.add_argument(
        "--sarif", nargs="?", const="-", metavar="FILE",
        help="emit findings as SARIF 2.1.0 to FILE (default stdout) "
             "instead of the plain report",
    )
    parser.add_argument(
        "--graph", action="store_true",
        help="dump the resolved whole-program call graph and exit",
    )
    parser.add_argument(
        "--timings", action="store_true",
        help="append per-rule wall times to the report",
    )
    return parser


def _explain(code: str) -> int:
    code = code.upper()
    if code not in RULES:
        print(f"unknown rule {code!r}; try --list-rules", file=sys.stderr)
        return 2
    print(f"{code}: {RULES[code]}")
    from repro.lint.dataflow import rule_docstring

    doc = rule_docstring(code)
    if doc is not None:
        print()
        lines = doc.expandtabs().splitlines()
        # Strip the common leading indentation of the docstring body.
        body = lines[1:]
        indents = [
            len(line) - len(line.lstrip())
            for line in body if line.strip()
        ]
        cut = min(indents) if indents else 0
        print(lines[0].strip())
        for line in body:
            print(line[cut:] if line.strip() else "")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    if args.explain:
        return _explain(args.explain)
    if args.graph:
        from repro.lint.callgraph import Project

        print(Project.build(args.paths).format_graph())
        return 0
    findings, timings = lint_tree(args.paths)
    if args.sarif is not None:
        document = json.dumps(to_sarif(findings), indent=2, sort_keys=True)
        if args.sarif == "-":
            print(document)
        else:
            with open(args.sarif, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
            print(f"simlint: wrote SARIF to {args.sarif} "
                  f"({len(findings)} findings)")
    else:
        print(format_findings(findings))
    if args.timings:
        total = sum(seconds for _, seconds in timings)
        for label, seconds in timings:
            print(f"simlint-timing: {label} {seconds * 1000:.1f}ms")
        print(f"simlint-timing: total {total * 1000:.1f}ms")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
