"""Runtime nondeterminism sanitizer: ``repro sanitize``.

The static rules (SIM001–SIM012) prove what they can from source; this
module catches what they cannot — nondeterminism reachable only through
dynamic dispatch, C extensions, or data-dependent control flow.  It
runs a target workload under instrumentation and compares *event-order
fingerprints*:

1. **Event digest** — :func:`repro.sim.engine.set_pop_observer` feeds
   every dequeued event into a running SHA-256 over ``(fire_at,
   event-type, process-name)`` records, in fire order.  Two runs of a
   deterministic model produce identical digests; the recorded prefix
   localizes the FIRST divergent event by index, timestamp, and name.
2. **Hash-seed variation** — set/dict iteration order for str keys
   depends on ``PYTHONHASHSEED``, which is frozen per interpreter, so
   the sanitizer re-runs the target in two subprocesses with different
   seeds and diffs their digests.  An in-process double run (same
   seed) separately catches stateful leakage between runs.
3. **Tripwires** — while the target runs, ``time.*`` wall clocks and
   the global ``random`` module functions are wrapped to record any
   caller inside the ``repro`` package.  A call from a line carrying a
   ``# simlint: disable=SIM001/SIM002`` comment is blessed (host-side
   timing in the runner, say); an unblessed trip is a finding.

Targets are either a trace figure (``--fig fig6``, fingerprinted the
same way the determinism gate fingerprints outcomes) or an arbitrary
callable (``--target pkg.mod:fn`` or ``--target path/to/file.py:fn``)
invoked with no arguments, fingerprinted by ``repr`` of its return
value.  ``tools/determinism_gate.py`` reuses the fingerprint and
divergence rendering from here.
"""

from __future__ import annotations

import argparse
import hashlib
import importlib
import importlib.util
import json
import linecache
import os
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Cap on retained event records; the digest and count keep running
#: past it, so divergence *after* the cap is still detected, just
#: localized only by index.
MAX_RECORDS = 200_000

#: ``time`` attributes wrapped by the tripwires (wall/CPU clocks).
_TIME_TRIPWIRES = (
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
)

#: ``random`` module-level functions backed by the shared global RNG.
_RANDOM_TRIPWIRES = (
    "random", "uniform", "randint", "randrange", "randbytes", "choice",
    "choices", "shuffle", "sample", "getrandbits", "gauss",
)


@dataclass
class CollectResult:
    """One instrumented run's complete observability record."""

    target: str
    hash_seed: str
    #: SHA-256 over every popped event record, in fire order.
    digest: str
    #: Total events popped (may exceed ``len(records)``).
    total_events: int
    #: First ``MAX_RECORDS`` records as (fire_at, event_type, name).
    records: List[Tuple[float, str, str]]
    #: Serialized observable outcome of the run.
    fingerprint: str
    #: Unblessed wall-clock / global-RNG calls: "file:line via func".
    trips: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class Divergence:
    """Localization of the first difference between two runs."""

    kind: str  # "event" | "tail" | "fingerprint"
    index: Optional[int]
    left: Optional[Tuple[float, str, str]]
    right: Optional[Tuple[float, str, str]]

    def render(self) -> str:
        if self.kind == "fingerprint":
            return ("event order identical but outcome fingerprints "
                    "differ — nondeterminism past the event loop "
                    "(aggregation or serialization)")
        if self.kind == "tail":
            return (f"runs agree on the first {self.index} events, "
                    f"then diverge beyond the recorded prefix "
                    f"({MAX_RECORDS} records)")
        left = _render_record(self.left)
        right = _render_record(self.right)
        return (f"first divergent event at index {self.index}: "
                f"run1 popped {left}, run2 popped {right}")


def _render_record(record: Optional[Tuple[float, str, str]]) -> str:
    if record is None:
        return "<end of run>"
    fire_at, kind, name = record
    label = f" {name!r}" if name else ""
    return f"{kind}{label} @ {fire_at:.3f}us"


# ---------------------------------------------------------------------------
# Instrumented collection
# ---------------------------------------------------------------------------


class _EventRecorder:
    """Accumulates the pop stream into records + a running digest."""

    def __init__(self) -> None:
        self.records: List[Tuple[float, str, str]] = []
        self.total = 0
        self._sha = hashlib.sha256()

    def __call__(self, now: float, event: Any) -> None:
        record = (now, type(event).__name__, getattr(event, "name", ""))
        self.total += 1
        self._sha.update(repr(record).encode())
        if len(self.records) < MAX_RECORDS:
            self.records.append(record)

    def digest(self) -> str:
        return self._sha.hexdigest()


class _Tripwires:
    """Wrap wall clocks and the global RNG to record repro-side callers."""

    def __init__(self) -> None:
        self.trips: List[str] = []
        self._saved: List[Tuple[Any, str, Any]] = []

    def _note(self, func_label: str) -> None:
        frame = sys._getframe(2)
        while frame is not None:
            filename = frame.f_code.co_filename
            if (
                filename != __file__
                and f"{os.sep}repro{os.sep}" in filename
                # A module-level frame means a lazy import is running
                # under the tripwires; import-time clock reads in the
                # stdlib are not model nondeterminism.
                and frame.f_code.co_name != "<module>"
            ):
                line = linecache.getline(filename, frame.f_lineno)
                if "simlint: disable" not in line:
                    self.trips.append(
                        f"{filename}:{frame.f_lineno} via {func_label}"
                    )
                return
            frame = frame.f_back

    def _wrap(self, module: Any, name: str, label: str) -> None:
        original = getattr(module, name, None)
        if original is None:
            return
        recorder = self

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            recorder._note(label)
            return original(*args, **kwargs)

        self._saved.append((module, name, original))
        setattr(module, name, wrapper)

    def install(self) -> None:
        import random as random_module
        import time as time_module

        for name in _TIME_TRIPWIRES:
            self._wrap(time_module, name, f"time.{name}")
        for name in _RANDOM_TRIPWIRES:
            self._wrap(random_module, name, f"random.{name}")

    def uninstall(self) -> None:
        for module, name, original in reversed(self._saved):
            setattr(module, name, original)
        self._saved.clear()


def trace_fingerprint(fig: str, n_ops: int) -> str:
    """One traced run's observable outcome as canonical JSON.

    This is the determinism contract of the repo in one string: per-
    personality run results and device-stat deltas, latency summaries,
    and span accounting.  ``tools/determinism_gate.py`` compares two of
    these; the sanitizer additionally varies the interpreter hash seed.
    """
    from repro.trace.run import run_traced

    report = run_traced(fig=fig, n_ops=n_ops)
    document: Dict[str, object] = {"fig": fig, "n_ops": n_ops}
    runs = {}
    for personality, run in sorted(report.runs.items()):
        runs[personality] = {
            "completed_ops": run.completed_ops,
            "failed_ops": run.failed_ops,
            "started_us": run.started_us,
            "finished_us": run.finished_us,
            "device_stats": asdict(run.device_stats)
            if run.device_stats is not None else None,
            "latency": run.latency.summary().as_dict(),
        }
    document["runs"] = runs
    span_counts: Dict[str, int] = {}
    for record in report.collector.records():
        key = f"pid{record.pid}/{record.cat}"
        span_counts[key] = span_counts.get(key, 0) + 1
    document["span_counts"] = span_counts
    document["spans_total"] = len(report.collector.records())
    document["spans_dropped"] = report.collector.dropped
    return json.dumps(document, sort_keys=True, indent=1)


def resolve_callable(spec: str) -> Callable[[], Any]:
    """``pkg.mod:fn`` or ``path/to/file.py:fn`` -> the callable."""
    module_part, sep, func_name = spec.partition(":")
    if not sep or not func_name:
        raise ValueError(
            f"target {spec!r} is not of the form module:function"
        )
    if module_part.endswith(".py"):
        loader_spec = importlib.util.spec_from_file_location(
            "_sanitizer_target", module_part
        )
        if loader_spec is None or loader_spec.loader is None:
            raise ValueError(f"cannot load module from {module_part!r}")
        module = importlib.util.module_from_spec(loader_spec)
        loader_spec.loader.exec_module(module)
    else:
        module = importlib.import_module(module_part)
    target = getattr(module, func_name, None)
    if not callable(target):
        raise ValueError(f"{spec!r} does not name a callable")
    return target


def collect(target: str, n_ops: int) -> CollectResult:
    """Run ``target`` once under full instrumentation.

    ``target`` is ``fig:<name>`` for trace scenarios or a
    ``module:function`` spec; the event observer and tripwires cover
    the whole run either way.
    """
    from repro.sim import engine as sim_engine

    recorder = _EventRecorder()
    tripwires = _Tripwires()
    sim_engine.set_pop_observer(recorder)
    tripwires.install()
    try:
        if target.startswith("fig:"):
            fingerprint = trace_fingerprint(target[len("fig:"):], n_ops)
        else:
            fingerprint = repr(resolve_callable(target)())
    finally:
        tripwires.uninstall()
        sim_engine.set_pop_observer(None)
    # Recording which hash seed this run executed under is the point
    # of the sanitizer, not leaked nondeterminism.
    return CollectResult(  # simlint: disable=SIM008
        target=target,
        hash_seed=os.environ.get("PYTHONHASHSEED", "<unset>"),
        digest=recorder.digest(),
        total_events=recorder.total,
        records=recorder.records,
        fingerprint=fingerprint,
        trips=tripwires.trips,
    )


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def localize(run1: CollectResult, run2: CollectResult) -> Optional[Divergence]:
    """First divergence between two runs, or None when identical."""
    if run1.digest != run2.digest or run1.total_events != run2.total_events:
        shorter = min(len(run1.records), len(run2.records))
        for index in range(shorter):
            if run1.records[index] != run2.records[index]:
                return Divergence("event", index,
                                  run1.records[index], run2.records[index])
        if len(run1.records) != len(run2.records) and \
                shorter < MAX_RECORDS:
            left = run1.records[shorter] if len(run1.records) > shorter \
                else None
            right = run2.records[shorter] if len(run2.records) > shorter \
                else None
            return Divergence("event", shorter, left, right)
        return Divergence("tail", shorter, None, None)
    if run1.fingerprint != run2.fingerprint:
        return Divergence("fingerprint", None, None, None)
    return None


# ---------------------------------------------------------------------------
# Subprocess orchestration (hash-seed variation)
# ---------------------------------------------------------------------------


def _collect_result_from_json(payload: str) -> CollectResult:
    raw = json.loads(payload)
    raw["records"] = [tuple(record) for record in raw["records"]]
    return CollectResult(**raw)


def collect_in_subprocess(
    target: str, n_ops: int, hash_seed: str
) -> CollectResult:
    """Run :func:`collect` in a child interpreter with a pinned seed.

    ``PYTHONHASHSEED`` is read once at interpreter startup, so varying
    it requires a fresh process.  The child reuses this module's
    ``--collect-json`` mode and streams its :class:`CollectResult`
    back as JSON.
    """
    import repro

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    package_parent = str(os.path.dirname(os.path.dirname(repro.__file__)))
    extra = [package_parent, os.getcwd()]
    prior = env.get("PYTHONPATH")
    if prior:
        extra.append(prior)
    env["PYTHONPATH"] = os.pathsep.join(extra)
    completed = subprocess.run(
        [sys.executable, "-m", "repro.lint.sanitizer",
         "--collect-json", "--target", target, "--n-ops", str(n_ops)],
        env=env, capture_output=True, text=True,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"sanitizer child (PYTHONHASHSEED={hash_seed}) failed:\n"
            f"{completed.stderr}"
        )
    return _collect_result_from_json(completed.stdout)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sanitize",
        description="runtime nondeterminism sanitizer: replay a target "
                    "under varied hash seeds with event-order digests "
                    "and wall-clock/RNG tripwires",
    )
    parser.add_argument(
        "--fig", default=None,
        help="trace scenario to sanitize (e.g. fig6)",
    )
    parser.add_argument(
        "--target", default=None,
        help="callable target as module:function or path.py:function "
             "(overrides --fig)",
    )
    parser.add_argument(
        "--n-ops", type=int, default=200,
        help="measured ops per personality for fig targets "
             "(default: 200)",
    )
    parser.add_argument(
        "--hash-seeds", default="0,1", metavar="A,B",
        help="two PYTHONHASHSEED values for the subprocess pair "
             "(default: 0,1)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: fig6 at 60 ops, same checks",
    )
    parser.add_argument(
        "--collect-json", action="store_true", help=argparse.SUPPRESS,
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(
        list(argv) if argv is not None else None
    )
    if args.smoke:
        args.fig = args.fig or "fig6"
        args.n_ops = min(args.n_ops, 60)
    target = args.target or f"fig:{args.fig or 'fig6'}"

    if args.collect_json:
        result = collect(target, args.n_ops)
        print(json.dumps(asdict(result)))
        return 0

    failures: List[str] = []

    # Phase 1: in-process double run — catches state leaking between
    # runs inside one interpreter (memo tables, module counters).
    first = collect(target, args.n_ops)
    second = collect(target, args.n_ops)
    divergence = localize(first, second)
    if divergence is not None:
        failures.append(
            f"in-process replay diverged: {divergence.render()}"
        )
    for trip in first.trips:
        failures.append(f"tripwire: {trip}")

    # Phase 2: subprocess pair under different hash seeds — catches
    # set/dict-order dependence that one interpreter can never see.
    seeds = [seed.strip() for seed in args.hash_seeds.split(",")]
    if len(seeds) != 2 or seeds[0] == seeds[1]:
        print(f"sanitize: --hash-seeds needs two distinct values, "
              f"got {args.hash_seeds!r}", file=sys.stderr)
        return 2
    left = collect_in_subprocess(target, args.n_ops, seeds[0])
    right = collect_in_subprocess(target, args.n_ops, seeds[1])
    divergence = localize(left, right)
    if divergence is not None:
        failures.append(
            f"hash-seed variation (PYTHONHASHSEED {seeds[0]} vs "
            f"{seeds[1]}) diverged: {divergence.render()}"
        )

    if failures:
        print(f"sanitize: FAIL — {target}")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"sanitize: OK — {target}: {first.total_events} events, "
          f"digest {first.digest[:12]}, stable across in-process "
          f"replay and PYTHONHASHSEED {seeds[0]}/{seeds[1]}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
