"""simlint: repo-specific static analysis for simulation correctness.

The discrete-event simulator under :mod:`repro.sim` is only useful if
it stays *deterministic* and its coroutine plumbing is used correctly.
This package is an AST-based checker (stdlib :mod:`ast` only — no new
dependencies) enforcing the simulator's contracts mechanically:

========  ==========================================================
code      rule
========  ==========================================================
SIM001    no wall-clock reads in model code (``time.time`` & co.)
SIM002    no module-level ``random.*`` / unseeded ``random.Random()``
SIM003    generator model function called as a bare statement
          (a silent no-op — must go through ``env.process`` / yield)
SIM004    no ``==`` / ``!=`` on simulated timestamps; use the
          ``units.times_equal`` tolerance helpers
SIM005    mutable or call-expression default arguments
SIM006    ``Span.phase(...)`` must be used as a context manager
========  ==========================================================

Findings are suppressed per line with ``# simlint: disable=SIM001``
(comma-separate several codes) or per file with
``# simlint: disable-file=SIM001``.

Run it as ``repro lint [paths...]`` or ``python -m repro.lint``.
"""

from repro.lint.engine import (
    Finding,
    format_findings,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.rules import RULES

__all__ = [
    "Finding",
    "RULES",
    "format_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
]
