"""Queue-depth workload runner and store adapters.

The runner plays an operation stream against any storage stack at a fixed
queue depth — the paper's asynchronous-I/O methodology ("KVPs are accessed
asynchronously", Sec. III).  ``queue_depth`` workers each hold one
operation in flight, sharing one stream, so device-side concurrency equals
the configured depth exactly.

Adapters translate :class:`~repro.kvbench.workload.Operation` items to
each stack's API:

* :class:`KVSSDAdapter` — SNIA KVS API on the KV device;
* :class:`LSMAdapter` — the RocksDB stand-in;
* :class:`HashKVAdapter` — the Aerospike stand-in;
* :class:`BlockAdapter` — raw block I/O with the same sizes and order
  (the paper's direct-I/O baseline: key index -> device offset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Iterable, Iterator, Optional

from repro.api.block import BlockDeviceAPI
from repro.api.kvs import KVStoreAPI
from repro.errors import DeviceError, WorkloadError
from repro.ftl.core import DeviceStats
from repro.hostkv.hashkv.store import HashKVStore
from repro.hostkv.lsm.store import LSMStore
from repro.kvbench.workload import Operation, OpType
from repro.metrics.bandwidth import BandwidthTracker
from repro.metrics.latency import LatencyRecorder
from repro.sim.engine import Environment, Event
from repro.units import align_up


class KVSSDAdapter:
    """Run operations through the SNIA KVS API."""

    def __init__(self, api: KVStoreAPI) -> None:
        self.api = api
        #: Underlying device, for uniform DeviceStats capture.
        self.device = api.device

    def execute(self, op: Operation) -> Generator[Event, None, int]:
        if op.op in (OpType.INSERT, OpType.UPDATE):
            yield from self.api.store(op.key, op.value_bytes)
            return len(op.key) + op.value_bytes
        if op.op is OpType.READ:
            value = yield from self.api.retrieve(op.key)
            return value
        if op.op is OpType.DELETE:
            yield from self.api.delete(op.key)
            return len(op.key)
        raise WorkloadError(f"unsupported op {op.op}")


class LSMAdapter:
    """Run operations through the LSM store."""

    def __init__(self, store: LSMStore) -> None:
        self.store = store
        #: The block device under the file system, for DeviceStats capture.
        self.device = store.fs.block_api.device

    def execute(self, op: Operation) -> Generator[Event, None, int]:
        if op.op in (OpType.INSERT, OpType.UPDATE):
            yield from self.store.put(op.key, op.value_bytes)
            return len(op.key) + op.value_bytes
        if op.op is OpType.READ:
            value = yield from self.store.get(op.key)
            return value
        if op.op is OpType.DELETE:
            yield from self.store.delete(op.key)
            return len(op.key)
        raise WorkloadError(f"unsupported op {op.op}")


class HashKVAdapter:
    """Run operations through the hash-index store."""

    def __init__(self, store: HashKVStore) -> None:
        self.store = store
        #: The block device under the store, for DeviceStats capture.
        self.device = store.block_api.device

    def execute(self, op: Operation) -> Generator[Event, None, int]:
        if op.op in (OpType.INSERT, OpType.UPDATE):
            yield from self.store.put(op.key, op.value_bytes)
            return len(op.key) + op.value_bytes
        if op.op is OpType.READ:
            value = yield from self.store.get(op.key)
            return value
        if op.op is OpType.DELETE:
            yield from self.store.delete(op.key)
            return len(op.key)
        raise WorkloadError(f"unsupported op {op.op}")


class BlockAdapter:
    """Run the same sizes and order as raw block I/O.

    Key index ``i`` maps to device offset ``i * slot`` where ``slot`` is
    the sector-aligned I/O size — the layout a direct-I/O benchmark uses.
    """

    def __init__(self, api: BlockDeviceAPI, io_bytes: int) -> None:
        if io_bytes < 1:
            raise WorkloadError(f"io size must be >= 1, got {io_bytes}")
        self.api = api
        #: Underlying device, for uniform DeviceStats capture.
        self.device = api.device
        self.io_bytes = align_up(io_bytes, api.device.config.sector_bytes)
        self.slots = api.device.user_capacity_bytes // self.io_bytes
        if self.slots < 1:
            raise WorkloadError("I/O size exceeds device capacity")

    def _offset(self, key_index: int) -> int:
        return (key_index % self.slots) * self.io_bytes

    def execute(self, op: Operation) -> Generator[Event, None, int]:
        offset = self._offset(op.key_index)
        if op.op in (OpType.INSERT, OpType.UPDATE):
            yield from self.api.write(offset, self.io_bytes)
            return self.io_bytes
        if op.op is OpType.READ:
            yield from self.api.read(offset, self.io_bytes)
            return self.io_bytes
        if op.op is OpType.DELETE:
            yield from self.api.deallocate(offset, self.io_bytes)
            return 0
        raise WorkloadError(f"unsupported op {op.op}")


@dataclass
class RunResult:
    """Everything a measured phase produced."""

    latency: LatencyRecorder
    bandwidth: BandwidthTracker
    started_us: float = 0.0
    finished_us: float = 0.0
    completed_ops: int = 0
    failed_ops: int = 0
    extras: dict = field(default_factory=dict)
    #: Device telemetry delta over the measured phase — the same
    #: DeviceStats struct regardless of which personality ran underneath.
    device_stats: Optional[DeviceStats] = None
    #: Per-op-type latency attribution (``LatencyBreakdown.summary()``)
    #: when the device ran with op tracing enabled; ``None`` otherwise.
    trace_summary: Optional[dict] = None

    @property
    def elapsed_us(self) -> float:
        return self.finished_us - self.started_us

    def throughput_kops(self) -> float:
        """Completed operations per millisecond of simulated time."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.completed_ops / (self.elapsed_us / 1000.0)


def drive_workload(
    env: Environment,
    adapter,
    operations: Iterable[Operation],
    queue_depth: int = 1,
    bandwidth_window_us: float = 50_000.0,
    name: str = "run",
    stop_after_us: float = float("inf"),
) -> Generator[Event, None, RunResult]:
    """Generator process executing ``operations`` at ``queue_depth``.

    Latencies are recorded per op type; completions feed a windowed
    bandwidth tracker.  Failed operations (device errors, absent keys)
    are counted, not raised — a benchmark keeps going like fio does.
    ``stop_after_us`` bounds the measured phase in simulated time: once
    the deadline passes, workers stop taking new operations (a duration-
    bounded run, like fio's ``runtime=``), recorded in ``extras``.
    """
    if queue_depth < 1:
        raise WorkloadError(f"queue depth must be >= 1, got {queue_depth}")
    result = RunResult(
        latency=LatencyRecorder(name),
        bandwidth=BandwidthTracker(bandwidth_window_us, name),
        started_us=env.now,
    )
    deadline = env.now + stop_after_us
    device = getattr(adapter, "device", None)
    stats_before = device.stats.snapshot() if device is not None else None
    stream: Iterator[Operation] = iter(operations)

    def worker() -> Generator[Event, None, None]:
        for op in stream:
            if env.now >= deadline:
                result.extras["stopped_early"] = True
                return
            started = env.now
            try:
                nbytes = yield env.process(adapter.execute(op))
            except DeviceError:
                result.failed_ops += 1
                continue
            result.latency.record(env.now - started, op.op.value)
            result.bandwidth.record(env.now, nbytes or 0)
            result.completed_ops += 1

    workers = [
        env.process(worker(), name=f"{name}.w{i}") for i in range(queue_depth)
    ]
    yield env.all_of(workers)
    result.finished_us = env.now
    result.bandwidth.finish(env.now)
    if stats_before is not None:
        result.device_stats = device.stats.delta(stats_before)
    tracer = getattr(device, "tracer", None)
    if tracer is not None and tracer.enabled and tracer.wants("op"):
        from repro.metrics.attribution import LatencyBreakdown

        result.trace_summary = LatencyBreakdown.from_records(
            tracer.collector.records(),
            pid=tracer.pid,
            since_us=result.started_us,
            name=name,
        ).summary()
    return result


def execute_workload(
    env: Environment,
    adapter,
    operations: Iterable[Operation],
    queue_depth: int = 1,
    bandwidth_window_us: float = 50_000.0,
    name: str = "run",
    stop_after_us: float = float("inf"),
) -> RunResult:
    """Convenience wrapper: run :func:`drive_workload` to completion."""
    process = env.process(
        drive_workload(
            env,
            adapter,
            operations,
            queue_depth,
            bandwidth_window_us,
            name,
            stop_after_us,
        ),
        name=name,
    )
    return env.run_until_complete(process)
