"""Seeded generators for the regimes static specs can't express.

:class:`~repro.kvbench.workload.WorkloadSpec` describes stationary
distributions; these generators produce *time-varying* trace-record
streams (see :mod:`repro.kvbench.traces`):

* :func:`generate_churn` — hot-key churn: the working set is a
  contiguous window over the population that rotates on a fixed op
  schedule, the regime where a location-agnostic hash index and a
  locality-dependent block stack should diverge;
* :func:`generate_expiry` — TTL writes with the implied deletes
  *materialized* into the stream at their expiry timestamps, so replay
  needs no clock of its own;
* :func:`generate_scan_mix` — point ops mixed with prefix scans that
  exercise the kvftl iterator buckets;
* :func:`generate_phases` — piecewise load: a list of (duration, spec)
  phases replayed back to back at each phase's own arrival rate.

Every generator is driven entirely by its spec's seed: same spec, same
byte stream, on any interpreter with any ``PYTHONHASHSEED`` — the
property suite pins this via the sanitizer's subprocess collector.
All outputs are timestamp-ordered, so they compose with
:func:`repro.kvbench.traces.merge_traces` and
:func:`repro.kvbench.traces.write_trace` directly.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.kvbench.traces import TraceRecord
from repro.kvbench.workload import WorkloadSpec, generate_operations
from repro.kvftl.population import KeyScheme


@dataclass(frozen=True)
class ChurnSpec:
    """Hot-key churn: a rotating contiguous working-set window.

    Ops 0..rotate_every_ops-1 hit keys [0, working_set); the next batch
    hits [working_set, 2*working_set) mod population, and so on — the
    whole hot set is replaced at once, the worst case for any locality
    assumption baked into data placement.  ``rotate_every_ops=0`` pins
    the window in place (the stationary control arm).
    """

    n_ops: int
    population: int
    working_set: int
    rotate_every_ops: int = 0
    read_fraction: float = 0.5
    value_bytes: int = 4096
    interarrival_us: float = 100.0
    key_scheme: KeyScheme = field(default_factory=KeyScheme)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_ops < 1:
            raise WorkloadError(f"n_ops must be >= 1, got {self.n_ops}")
        if not 1 <= self.working_set <= self.population:
            raise WorkloadError(
                f"working_set must be in [1, population], got "
                f"{self.working_set} of {self.population}"
            )
        if self.rotate_every_ops < 0:
            raise WorkloadError("rotate_every_ops must be >= 0")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("read_fraction outside [0, 1]")
        if self.interarrival_us < 0.0:
            raise WorkloadError("interarrival_us must be >= 0")


def generate_churn(spec: ChurnSpec) -> Iterator[TraceRecord]:
    """Timestamp-ordered churn records (reads and updates only).

    Keys are drawn uniformly from the current window, so the caller must
    prefill the full population before replay (every record addresses an
    existing key).
    """
    rng = random.Random(spec.seed)
    window_start = 0
    for position in range(spec.n_ops):
        if (
            spec.rotate_every_ops
            and position
            and position % spec.rotate_every_ops == 0
        ):
            window_start = (window_start + spec.working_set) % spec.population
        offset = rng.randrange(spec.working_set)
        index = (window_start + offset) % spec.population
        is_read = rng.random() < spec.read_fraction
        yield TraceRecord(
            timestamp_us=position * spec.interarrival_us,
            op="read" if is_read else "update",
            key=spec.key_scheme.key_for(index),
            size=0 if is_read else spec.value_bytes,
        )


@dataclass(frozen=True)
class ExpirySpec:
    """TTL workload: writes carry a TTL; expiry deletes are injected.

    Each write (re)arms the key's TTL.  When a key's newest TTL lapses,
    a ``delete`` record is emitted at the expiry timestamp; a rewrite
    before expiry supersedes the pending delete (generation counter).
    Reads only ever target live keys, so replay never read-misses.
    """

    n_ops: int
    population: int
    ttl_us: float
    write_fraction: float = 0.5
    value_bytes: int = 4096
    interarrival_us: float = 100.0
    key_scheme: KeyScheme = field(default_factory=KeyScheme)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_ops < 1:
            raise WorkloadError(f"n_ops must be >= 1, got {self.n_ops}")
        if self.population < 1:
            raise WorkloadError("population must be >= 1")
        if self.ttl_us <= 0.0:
            raise WorkloadError(f"ttl_us must be > 0, got {self.ttl_us}")
        if not 0.0 < self.write_fraction <= 1.0:
            raise WorkloadError("write_fraction outside (0, 1]")
        if self.interarrival_us <= 0.0:
            raise WorkloadError("interarrival_us must be > 0")


def generate_expiry(spec: ExpirySpec) -> Iterator[TraceRecord]:
    """Foreground ops plus materialized expiry deletes, in time order.

    ``n_ops`` counts foreground operations; injected deletes come on
    top.  The stream is self-contained: every read and delete names a
    key a preceding insert created.
    """
    rng = random.Random(spec.seed)
    # (expiry_ts, arm_seq, index): arm_seq both breaks timestamp ties
    # deterministically and orders same-instant expirations by arming.
    pending: List[Tuple[float, int, int]] = []
    armed: Dict[int, int] = {}
    live: List[int] = []
    live_pos: Dict[int, int] = {}
    arm_seq = 0

    def _expire_until(now: float) -> Iterator[TraceRecord]:
        while pending and pending[0][0] <= now:
            expiry_ts, seq, index = heapq.heappop(pending)
            if armed.get(index) != seq:
                continue  # superseded by a rewrite
            del armed[index]
            position = live_pos.pop(index)
            last = live.pop()
            if last != index:
                live[position] = last
                live_pos[last] = position
            yield TraceRecord(
                timestamp_us=expiry_ts,
                op="delete",
                key=spec.key_scheme.key_for(index),
                size=0,
            )

    for position in range(spec.n_ops):
        now = position * spec.interarrival_us
        yield from _expire_until(now)
        if live and rng.random() >= spec.write_fraction:
            index = live[rng.randrange(len(live))]
            yield TraceRecord(now, "read", spec.key_scheme.key_for(index), 0)
            continue
        index = rng.randrange(spec.population)
        fresh = index not in live_pos
        if fresh:
            live_pos[index] = len(live)
            live.append(index)
        arm_seq += 1
        armed[index] = arm_seq
        heapq.heappush(pending, (now + spec.ttl_us, arm_seq, index))
        yield TraceRecord(
            timestamp_us=now,
            op="insert" if fresh else "update",
            key=spec.key_scheme.key_for(index),
            size=spec.value_bytes,
            ttl_us=spec.ttl_us,
        )
    # Drain: a trace should leave the store the way a TTL cache would.
    yield from _expire_until(float((spec.n_ops + 1)) * spec.interarrival_us
                             + spec.ttl_us)


@dataclass(frozen=True)
class ScanMixSpec:
    """Point reads/updates mixed with prefix scans.

    Scans address the key scheme's 4-byte prefix buckets (the KV-FTL's
    only iteration primitive); ``scan_length`` is carried in the
    record's size field.  Prefill the population before replay.
    """

    n_ops: int
    population: int
    scan_fraction: float = 0.2
    scan_length: int = 16
    read_fraction: float = 0.5
    value_bytes: int = 4096
    interarrival_us: float = 100.0
    key_scheme: KeyScheme = field(default_factory=KeyScheme)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_ops < 1:
            raise WorkloadError(f"n_ops must be >= 1, got {self.n_ops}")
        if self.population < 1:
            raise WorkloadError("population must be >= 1")
        if not 0.0 <= self.scan_fraction <= 1.0:
            raise WorkloadError("scan_fraction outside [0, 1]")
        if self.scan_length < 1:
            raise WorkloadError("scan_length must be >= 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("read_fraction outside [0, 1]")
        if self.interarrival_us < 0.0:
            raise WorkloadError("interarrival_us must be >= 0")


def generate_scan_mix(spec: ScanMixSpec) -> Iterator[TraceRecord]:
    """Timestamp-ordered mix of scans and point ops."""
    rng = random.Random(spec.seed)
    for position in range(spec.n_ops):
        now = position * spec.interarrival_us
        index = rng.randrange(spec.population)
        key = spec.key_scheme.key_for(index)
        draw = rng.random()
        if draw < spec.scan_fraction:
            yield TraceRecord(now, "scan", key, spec.scan_length)
        elif rng.random() < spec.read_fraction:
            yield TraceRecord(now, "read", key, 0)
        else:
            yield TraceRecord(now, "update", key, spec.value_bytes)


@dataclass(frozen=True)
class PhaseSpec:
    """Piecewise load: (duration_us, WorkloadSpec) phases back to back.

    Each phase replays its spec's exact operation stream at the constant
    rate ``duration_us / n_ops``; phase boundaries are where mid-run
    shifts (mix flips, value-size jumps, population changes) happen.
    """

    phases: Tuple[Tuple[float, WorkloadSpec], ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError("PhaseSpec needs at least one phase")
        for number, (duration, _spec) in enumerate(self.phases, start=1):
            if duration <= 0.0:
                raise WorkloadError(
                    f"phase {number}: duration must be > 0, got {duration}"
                )

    @property
    def total_ops(self) -> int:
        return sum(spec.n_ops for _duration, spec in self.phases)

    @property
    def total_duration_us(self) -> float:
        return sum(duration for duration, _spec in self.phases)


def generate_phases(spec: PhaseSpec) -> Iterator[TraceRecord]:
    """All phases' operation streams, each at its own constant rate."""
    offset = 0.0
    for duration, phase in spec.phases:
        interarrival = duration / phase.n_ops
        for position, op in enumerate(generate_operations(phase)):
            yield TraceRecord(
                timestamp_us=offset + position * interarrival,
                op=op.op.value,
                key=op.key,
                size=op.value_bytes,
            )
        offset += duration
