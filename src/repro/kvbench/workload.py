"""Workload specification and operation stream generation.

A :class:`WorkloadSpec` captures the KVbench knobs the paper sweeps
(Sec. III): request type (insert / update / read / mixed), access pattern
(sequential / uniform / zipfian / sliding window), key and value sizes,
and the number of operations.  :func:`generate_operations` turns a spec
into a deterministic stream of :class:`Operation` items that any store
adapter can execute.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.kvbench.distributions import (
    ZipfianGenerator,
    sequential_indices,
    sliding_window_indices,
    uniform_indices,
)
from repro.kvftl.population import KeyScheme


class OpType(enum.Enum):
    """One key-value operation kind."""

    INSERT = "insert"
    UPDATE = "update"
    READ = "read"
    DELETE = "delete"


class Pattern(enum.Enum):
    """Key access order."""

    SEQUENTIAL = "seq"
    UNIFORM = "rand"
    ZIPFIAN = "zipf"
    SLIDING_WINDOW = "window"


@dataclass(frozen=True)
class Operation:
    """One generated request."""

    op: OpType
    key: bytes
    key_index: int
    value_bytes: int


@dataclass(frozen=True)
class WorkloadSpec:
    """A KVbench-style workload description.

    ``population`` is the number of distinct keys; inserts walk new keys,
    updates and reads draw existing ones according to ``pattern``.
    ``read_fraction`` only matters for ``mixed`` workloads.
    """

    n_ops: int
    op: str  # 'insert' | 'update' | 'read' | 'mixed' | 'delete'
    pattern: Pattern = Pattern.UNIFORM
    population: Optional[int] = None
    key_scheme: KeyScheme = field(default_factory=KeyScheme)
    value_bytes: int = 4096
    read_fraction: float = 0.5
    zipf_theta: float = 0.99
    window_fraction: float = 0.05
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_ops < 1:
            raise WorkloadError(f"n_ops must be >= 1, got {self.n_ops}")
        if self.op not in {"insert", "update", "read", "mixed", "delete"}:
            raise WorkloadError(f"unknown op kind {self.op!r}")
        if self.value_bytes < 0:
            raise WorkloadError(f"value size must be >= 0, got {self.value_bytes}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("read_fraction outside [0, 1]")

    @property
    def effective_population(self) -> int:
        """Distinct keys this workload addresses."""
        if self.population is not None:
            if self.population < 1:
                raise WorkloadError("population must be >= 1")
            return self.population
        return self.n_ops


def _shuffled_indices(population: int, count: int, seed: int) -> Iterator[int]:
    """A random permutation, repeated if ``count`` exceeds the population.

    Insert phases must visit each key exactly once even in random order
    (an insert that repeats a key is an update); a permutation gives
    random *order* with full coverage.
    """
    rng = random.Random(seed)
    emitted = 0
    while emitted < count:
        order = list(range(population))
        rng.shuffle(order)
        for index in order:
            if emitted >= count:
                return
            yield index
            emitted += 1


def _index_stream(spec: WorkloadSpec) -> Iterator[int]:
    population = spec.effective_population
    if spec.pattern is Pattern.SEQUENTIAL:
        return sequential_indices(population, spec.n_ops)
    if spec.pattern is Pattern.UNIFORM:
        if spec.op == "insert":
            return _shuffled_indices(population, spec.n_ops, spec.seed)
        return uniform_indices(population, spec.n_ops, spec.seed)
    if spec.pattern is Pattern.ZIPFIAN:
        return ZipfianGenerator(
            population, spec.zipf_theta, spec.seed
        ).indices(spec.n_ops)
    if spec.pattern is Pattern.SLIDING_WINDOW:
        return sliding_window_indices(
            population, spec.n_ops, spec.window_fraction, spec.seed
        )
    raise WorkloadError(f"unhandled pattern {spec.pattern}")


def generate_operations(spec: WorkloadSpec) -> Iterator[Operation]:
    """Deterministic operation stream for ``spec``.

    Insert workloads visit each key exactly once in pattern order over a
    fresh key space (an insert phase); update/read/delete draw from the
    existing population.  Mixed workloads interleave reads and updates by
    ``read_fraction`` using a dedicated RNG so the key pattern stays
    comparable across mixes.
    """
    mix_rng = random.Random(spec.seed + 7919)
    for index in _index_stream(spec):
        key = spec.key_scheme.key_for(index)
        if spec.op == "insert":
            kind = OpType.INSERT
        elif spec.op == "update":
            kind = OpType.UPDATE
        elif spec.op == "read":
            kind = OpType.READ
        elif spec.op == "delete":
            kind = OpType.DELETE
        else:  # mixed
            kind = (
                OpType.READ
                if mix_rng.random() < spec.read_fraction
                else OpType.UPDATE
            )
        value = spec.value_bytes if kind is not OpType.READ else 0
        yield Operation(kind, key, index, value)
