"""Plain-text result tables for the benchmark harness.

Every bench prints the same rows/series the paper's figures show, via
these helpers, so ``pytest benchmarks/ --benchmark-only`` output doubles
as the reproduction record copied into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with right-aligned numeric-ish columns."""
    materialized: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float], precision: int = 1) -> str:
    """One labeled series on a single line (a figure's curve as text)."""
    rendered = ", ".join(f"{value:.{precision}f}" for value in values)
    return f"{label}: [{rendered}]"


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline — a quick visual of a bandwidth time series."""
    if not values:
        return ""
    glyphs = "▁▂▃▄▅▆▇█"
    top = max(values)
    if top <= 0:
        return glyphs[0] * len(values)
    return "".join(
        glyphs[min(len(glyphs) - 1, int(value / top * (len(glyphs) - 1)))]
        for value in values
    )


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
