"""KVbench-style workload generation, adapters, runner, and reporting."""

from repro.kvbench.distributions import (
    ZipfianGenerator,
    sequential_indices,
    sliding_window_indices,
    uniform_indices,
    zipfian_indices,
)
from repro.kvbench.report import format_series, format_table, sparkline
from repro.kvbench.runner import (
    BlockAdapter,
    HashKVAdapter,
    KVSSDAdapter,
    LSMAdapter,
    RunResult,
    drive_workload,
    execute_workload,
)
from repro.kvbench.workload import (
    Operation,
    OpType,
    Pattern,
    WorkloadSpec,
    generate_operations,
)
from repro.kvbench.ycsb import (
    YCSBDriver,
    YCSBOperation,
    YCSBSpec,
    generate_ycsb,
)

__all__ = [
    "BlockAdapter",
    "HashKVAdapter",
    "KVSSDAdapter",
    "LSMAdapter",
    "Operation",
    "OpType",
    "Pattern",
    "RunResult",
    "WorkloadSpec",
    "YCSBDriver",
    "YCSBOperation",
    "YCSBSpec",
    "ZipfianGenerator",
    "generate_ycsb",
    "drive_workload",
    "execute_workload",
    "format_series",
    "format_table",
    "generate_operations",
    "sequential_indices",
    "sliding_window_indices",
    "sparkline",
    "uniform_indices",
    "zipfian_indices",
]
