"""Trace-driven workloads: a versioned, line-oriented op-log format.

Every figure so far drives the devices with static synthetic
distributions (:class:`~repro.kvbench.workload.WorkloadSpec`).  A
*trace* decouples the workload from its generator: Twitter/Meta-style
key-value op logs — one operation per line with an arrival timestamp —
can be replayed against any store adapter, and any existing spec can be
*exported* as a trace, so synthetic and recorded workloads flow through
one replay path.

Format (``KVT`` version 1)::

    #kvtrace v1
    # free-form comments anywhere after the header
    <timestamp_us> <op> <key> <size> [<ttl_us>]

* ``timestamp_us`` — arrival time in microseconds, non-decreasing down
  the file (closed-loop replay ignores it; open-loop replay turns it
  into frontend arrivals);
* ``op`` — one of ``insert update read delete scan``;
* ``key`` — the key bytes, percent-escaped so arbitrary bytes survive a
  text file (ASCII ``0x21–0x7e`` except ``%`` is literal);
* ``size`` — value bytes for writes, ``0`` for reads/deletes, and the
  scan limit for ``scan`` records;
* ``ttl_us`` — optional time-to-live; ``0``/absent means none.  TTLs are
  advisory on replay (the expiry generator materializes the deletes).

The parser is strict: a truncated line, an unknown op code, a version
mismatch, or an out-of-order timestamp raises
:class:`~repro.errors.WorkloadError` naming the offending line — a trace
that parses is a trace that replays deterministically.  ``.gz`` paths
are read and written through :mod:`gzip` transparently.
"""

from __future__ import annotations

import gzip
import heapq
from dataclasses import dataclass
from typing import (
    IO,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import WorkloadError
from repro.kvbench.workload import (
    Operation,
    OpType,
    WorkloadSpec,
    generate_operations,
)
from repro.kvbench.ycsb import YCSBOperation
from repro.kvftl.population import KeyScheme

#: Header line opening every trace file.
TRACE_MAGIC = "#kvtrace"
#: The format version this module reads and writes.
TRACE_VERSION = 1
#: Recognized record op codes (superset of OpType: scans have no
#: first-class OpType; the replay driver expands them).
OP_CODES = ("insert", "update", "read", "delete", "scan")

#: Default synthetic inter-arrival gap when exporting a spec (10k ops/s).
DEFAULT_INTERARRIVAL_US = 100.0


@dataclass(frozen=True)
class TraceRecord:
    """One parsed trace line."""

    timestamp_us: float
    #: Op code from :data:`OP_CODES` (a plain string, not OpType, so the
    #: record can express scans).
    op: str
    key: bytes
    #: Value bytes for writes, 0 for reads/deletes, scan limit for scans.
    size: int
    #: Time-to-live; 0.0 = none.
    ttl_us: float = 0.0

    def __post_init__(self) -> None:
        if self.timestamp_us < 0.0:
            raise WorkloadError(
                f"trace timestamp must be >= 0, got {self.timestamp_us}"
            )
        if self.op not in OP_CODES:
            raise WorkloadError(
                f"unknown trace op {self.op!r}; choose from {OP_CODES}"
            )
        if not self.key:
            raise WorkloadError("trace key must be non-empty")
        if self.size < 0:
            raise WorkloadError(f"trace size must be >= 0, got {self.size}")
        if self.op == "scan" and self.size < 1:
            raise WorkloadError(
                f"scan limit must be >= 1, got {self.size}"
            )
        if self.ttl_us < 0.0:
            raise WorkloadError(f"ttl must be >= 0, got {self.ttl_us}")


# ---------------------------------------------------------------------------
# Key escaping: arbitrary bytes <-> one whitespace-free ASCII token
# ---------------------------------------------------------------------------


def escape_key(key: bytes) -> str:
    """Percent-escape ``key`` into a single whitespace-free token."""
    out: List[str] = []
    for byte in key:
        if 0x21 <= byte <= 0x7E and byte != 0x25:  # printable, not '%'
            out.append(chr(byte))
        else:
            out.append(f"%{byte:02X}")
    return "".join(out)


def unescape_key(token: str) -> bytes:
    """Inverse of :func:`escape_key`; raises WorkloadError on bad input."""
    out = bytearray()
    i = 0
    while i < len(token):
        ch = token[i]
        if ch == "%":
            hex_part = token[i + 1:i + 3]
            if len(hex_part) != 2:
                raise WorkloadError(f"truncated key escape in {token!r}")
            try:
                out.append(int(hex_part, 16))
            except ValueError:
                raise WorkloadError(f"bad key escape %{hex_part} in {token!r}")
            i += 3
        else:
            code = ord(ch)
            if not 0x21 <= code <= 0x7E:
                raise WorkloadError(
                    f"unescaped byte {code:#04x} in key token {token!r}"
                )
            out.append(code)
            i += 1
    return bytes(out)


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _open_write(path: str) -> IO[str]:
    if str(path).endswith(".gz"):
        return gzip.open(path, "wt", encoding="ascii")
    return open(path, "w", encoding="ascii")


def _open_read(path: str) -> IO[str]:
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt", encoding="ascii")
    return open(path, "r", encoding="ascii")


def format_record(record: TraceRecord) -> str:
    """One trace line (no newline).  ``repr`` floats round-trip exactly."""
    fields = [
        repr(record.timestamp_us),
        record.op,
        escape_key(record.key),
        str(record.size),
    ]
    if record.ttl_us > 0.0:
        fields.append(repr(record.ttl_us))
    return " ".join(fields)


def write_trace(path: str, records: Iterable[TraceRecord]) -> int:
    """Write ``records`` to ``path`` (gzip if it ends ``.gz``).

    Returns the record count.  Timestamps must be non-decreasing — the
    writer enforces the same invariant the parser does, so anything
    written here is guaranteed to parse back.
    """
    count = 0
    previous = 0.0
    with _open_write(path) as handle:
        handle.write(f"{TRACE_MAGIC} v{TRACE_VERSION}\n")
        for record in records:
            if record.timestamp_us < previous:
                raise WorkloadError(
                    f"record {count + 1}: timestamp {record.timestamp_us} "
                    f"goes backwards (previous {previous})"
                )
            previous = record.timestamp_us
            handle.write(format_record(record) + "\n")
            count += 1
    return count


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _fail(source: str, lineno: int, message: str) -> WorkloadError:
    return WorkloadError(f"{source}:{lineno}: {message}")


def _parse_header(line: str, source: str) -> None:
    parts = line.strip().split()
    if len(parts) != 2 or parts[0] != TRACE_MAGIC:
        raise _fail(source, 1, f"not a kvtrace file (expected "
                               f"'{TRACE_MAGIC} v{TRACE_VERSION}' header)")
    version = parts[1]
    if not version.startswith("v") or not version[1:].isdigit():
        raise _fail(source, 1, f"malformed trace version {version!r}")
    if int(version[1:]) != TRACE_VERSION:
        raise _fail(
            source, 1,
            f"trace version mismatch: file is {version}, "
            f"this reader supports v{TRACE_VERSION}",
        )


def _parse_float(text: str, what: str, source: str, lineno: int) -> float:
    try:
        value = float(text)
    except ValueError:
        raise _fail(source, lineno, f"bad {what} {text!r}")
    if value != value or value in (float("inf"), float("-inf")):
        raise _fail(source, lineno, f"non-finite {what} {text!r}")
    return value


def parse_trace(
    lines: Iterable[str], source: str = "<trace>"
) -> List[TraceRecord]:
    """Parse trace lines strictly; every error names ``source:lineno``.

    The first line must be the version header.  Later ``#`` lines are
    comments.  Records must carry 4 or 5 fields with non-decreasing
    timestamps; anything else raises :class:`WorkloadError` — a corrupt
    trace is never silently skipped over.
    """
    records: List[TraceRecord] = []
    previous = 0.0
    saw_header = False
    lineno = 0
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if lineno == 1:
            _parse_header(line, source)
            saw_header = True
            continue
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 4:
            raise _fail(
                source, lineno,
                f"truncated record: {len(fields)} of 4+ fields "
                f"(timestamp op key size [ttl])",
            )
        if len(fields) > 5:
            raise _fail(
                source, lineno, f"too many fields ({len(fields)}; max 5)"
            )
        timestamp = _parse_float(fields[0], "timestamp", source, lineno)
        if timestamp < previous:
            raise _fail(
                source, lineno,
                f"out-of-order timestamp {timestamp} "
                f"(previous record at {previous})",
            )
        op = fields[1]
        if op not in OP_CODES:
            raise _fail(
                source, lineno,
                f"unknown op code {op!r}; choose from {OP_CODES}",
            )
        try:
            key = unescape_key(fields[2])
        except WorkloadError as exc:
            raise _fail(source, lineno, str(exc))
        if not fields[3].lstrip("-").isdigit():
            raise _fail(source, lineno, f"bad size {fields[3]!r}")
        size = int(fields[3])
        ttl = 0.0
        if len(fields) == 5:
            ttl = _parse_float(fields[4], "ttl", source, lineno)
        try:
            record = TraceRecord(timestamp, op, key, size, ttl)
        except WorkloadError as exc:
            raise _fail(source, lineno, str(exc))
        records.append(record)
        previous = timestamp
    if not saw_header:
        raise _fail(source, max(lineno, 1), "empty trace (missing header)")
    return records


def read_trace(path: str) -> List[TraceRecord]:
    """Parse the trace file at ``path`` (gzip-aware)."""
    with _open_read(path) as handle:
        return parse_trace(handle, source=str(path))


# ---------------------------------------------------------------------------
# Exporting specs as traces
# ---------------------------------------------------------------------------


def spec_to_records(
    spec: WorkloadSpec,
    interarrival_us: float = DEFAULT_INTERARRIVAL_US,
    start_us: float = 0.0,
) -> Iterator[TraceRecord]:
    """The spec's exact operation stream as trace records.

    Timestamps are a synthetic constant-rate clock (specs carry no
    arrival process); the *operations* are byte-identical to
    :func:`generate_operations`, so replaying the export reproduces the
    spec's run result exactly.
    """
    if interarrival_us < 0.0:
        raise WorkloadError(
            f"interarrival_us must be >= 0, got {interarrival_us}"
        )
    for position, op in enumerate(generate_operations(spec)):
        yield TraceRecord(
            timestamp_us=start_us + position * interarrival_us,
            op=op.op.value,
            key=op.key,
            size=op.value_bytes,
        )


def export_spec(
    spec: WorkloadSpec,
    path: str,
    interarrival_us: float = DEFAULT_INTERARRIVAL_US,
) -> int:
    """Write ``spec``'s operation stream to ``path``; returns the count."""
    return write_trace(path, spec_to_records(spec, interarrival_us))


def merge_traces(*streams: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Merge record streams into one timestamp-ordered trace.

    Each input stream must already be timestamp-ordered (every generator
    in this package is).  Ties break by stream position, then by arrival
    order within a stream — never by hash or id order, so merges are
    deterministic across interpreters.
    """
    def _keyed(
        index: int, stream: Iterable[TraceRecord]
    ) -> Iterator[Tuple[Tuple[float, int, int], TraceRecord]]:
        for seq, record in enumerate(stream):
            yield (record.timestamp_us, index, seq), record

    iterators = [_keyed(index, stream) for index, stream in enumerate(streams)]
    return [record for _key, record in heapq.merge(*iterators)]


# ---------------------------------------------------------------------------
# Replay adapter
# ---------------------------------------------------------------------------

ReplayOp = Union[Operation, YCSBOperation]


class TraceWorkload:
    """Adapter from parsed records to runner-compatible operation streams.

    * :meth:`operations` (and plain iteration) yields
      :class:`~repro.kvbench.workload.Operation` items —
      ``generate_operations``-compatible, so the closed-loop runner, the
      sweep cells, and the cluster router consume traces unchanged.
      ``scan`` records come out as
      :class:`~repro.kvbench.ycsb.YCSBOperation` with a positive
      ``scan_length``; drive those through
      :class:`~repro.kvbench.ycsb.YCSBDriver`.
    * :meth:`arrivals` exposes the trace's timestamps for the open-loop
      frontend path (:meth:`repro.frontend.arrivals.ArrivalSpec.from_trace`).

    ``key_scheme`` recovers each key's index when the trace was produced
    by a scheme (exported specs round-trip exactly); foreign keys get
    deterministic first-seen indices, which keeps block-device offsets
    and replays stable.
    """

    def __init__(
        self,
        records: Sequence[TraceRecord],
        key_scheme: Optional[KeyScheme] = None,
    ) -> None:
        if not records:
            raise WorkloadError("a trace workload needs at least one record")
        self.records: Tuple[TraceRecord, ...] = tuple(records)
        self.key_scheme = key_scheme
        self._interned: Dict[bytes, int] = {}

    @property
    def n_ops(self) -> int:
        return len(self.records)

    @property
    def duration_us(self) -> float:
        """Span from the first arrival to the last."""
        return self.records[-1].timestamp_us - self.records[0].timestamp_us

    def _index_for(self, key: bytes) -> int:
        if self.key_scheme is not None:
            index = self.key_scheme.index_of(key)
            if index is not None:
                return index
        interned = self._interned.get(key)
        if interned is None:
            interned = len(self._interned)
            self._interned[key] = interned
        return interned

    def _operation(self, record: TraceRecord) -> ReplayOp:
        index = self._index_for(record.key)
        if record.op == "scan":
            return YCSBOperation(
                Operation(OpType.READ, record.key, index, 0),
                scan_length=record.size,
            )
        return Operation(OpType(record.op), record.key, index, record.size)

    def operations(self) -> Iterator[ReplayOp]:
        """The trace's operation stream, in arrival order."""
        for record in self.records:
            yield self._operation(record)

    def __iter__(self) -> Iterator[ReplayOp]:
        return self.operations()

    def arrivals(self) -> Tuple[float, ...]:
        """Arrival timestamps (us), non-decreasing — open-loop input."""
        return tuple(record.timestamp_us for record in self.records)

    def has_scans(self) -> bool:
        return any(record.op == "scan" for record in self.records)
