"""YCSB core workloads A–F as sweep-engine cells.

Each (workload, system) pair is one :class:`~repro.exec.spec.SweepPoint`
whose cell, :func:`ycsb_cell`, is a module-level pure function of
primitives — the shape the sweep engine requires for process-pool
pickling and content-addressed caching.  The bench
``benchmarks/bench_ycsb_workloads.py`` and the cluster's multi-tenant
router both build on the same cells, so "YCSB on this testbed" has
exactly one definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.experiment import build_kv_rig, build_lsm_rig, lab_geometry
from repro.errors import WorkloadError
from repro.exec.runner import SweepRunner, execute_spec
from repro.exec.spec import SweepPoint, SweepSpec
from repro.kvbench.runner import execute_workload
from repro.kvbench.ycsb import YCSBDriver, YCSBSpec, generate_ycsb
from repro.kvftl.population import KeyScheme

#: The six YCSB core workloads, in canonical order.
YCSB_WORKLOADS = ("A", "B", "C", "D", "E", "F")
#: Systems the cells can drive: the KV-SSD and the RocksDB stand-in.
YCSB_SYSTEMS = ("kv", "lsm")
#: Key namespace shared by every cell (YCSB's "user########..." keys).
_SCHEME = KeyScheme(prefix=b"user", digits=12)


@dataclass(frozen=True)
class YCSBCellResult:
    """One (workload, system) measurement (picklable, cacheable)."""

    workload: str
    system: str
    mean_us: float
    p99_us: float
    throughput_kops: float
    completed_ops: int
    failed_ops: int


def ycsb_cell(
    workload: str,
    system: str,
    n_ops: int = 600,
    population: int = 3000,
    value_bytes: int = 1000,
    scan_length: int = 20,
    queue_depth: int = 8,
    blocks_per_plane: int = 8,
    seed: int = 1,
) -> YCSBCellResult:
    """Run one YCSB workload against one system — the sweep cell."""
    if system not in YCSB_SYSTEMS:
        raise WorkloadError(
            f"unknown system {system!r}; expected one of {YCSB_SYSTEMS}"
        )
    spec = YCSBSpec(
        workload=workload,
        n_ops=n_ops,
        population=population,
        key_scheme=_SCHEME,
        value_bytes=value_bytes,
        scan_length=scan_length,
        seed=seed,
    )
    geometry = lab_geometry(blocks_per_plane)
    if system == "kv":
        rig = build_kv_rig(geometry)
        rig.device.fast_fill(population, value_bytes, _SCHEME)
        adapter = rig.adapter
        env = rig.env
    else:
        lsm_rig = build_lsm_rig(geometry)
        lsm_rig.store.prime_fill(
            {_SCHEME.key_for(i): value_bytes for i in range(population)},
            level=3,
        )
        adapter = lsm_rig.adapter
        env = lsm_rig.env
    run = execute_workload(
        env,
        YCSBDriver(adapter, spec),
        generate_ycsb(spec),
        queue_depth=queue_depth,
        name=f"ycsb{workload}.{system}",
    )
    return YCSBCellResult(
        workload=workload,
        system=system,
        mean_us=run.latency.mean(),
        p99_us=run.latency.summary().p99,
        throughput_kops=run.throughput_kops(),
        completed_ops=run.completed_ops,
        failed_ops=run.failed_ops,
    )


def ycsb_sweep_spec(
    workloads: Tuple[str, ...] = YCSB_WORKLOADS,
    systems: Tuple[str, ...] = YCSB_SYSTEMS,
    n_ops: int = 600,
    population: int = 3000,
    value_bytes: int = 1000,
    scan_length: int = 20,
    queue_depth: int = 8,
    blocks_per_plane: int = 8,
    seed: int = 1,
) -> SweepSpec:
    """The workload-by-system grid as one sweep spec."""
    points = tuple(
        SweepPoint(
            label=f"{workload}.{system}",
            fn=ycsb_cell,
            kwargs={
                "workload": workload,
                "system": system,
                "n_ops": n_ops,
                "population": population,
                "value_bytes": value_bytes,
                "scan_length": scan_length,
                "queue_depth": queue_depth,
                "blocks_per_plane": blocks_per_plane,
                "seed": seed,
            },
            seed=seed,
        )
        for workload in workloads
        for system in systems
    )
    return SweepSpec(name="ycsb", points=points)


def run_ycsb_sweep(
    workloads: Tuple[str, ...] = YCSB_WORKLOADS,
    n_ops: int = 600,
    population: int = 3000,
    runner: Optional[SweepRunner] = None,
    **kwargs: int,
) -> Dict[str, Dict[str, YCSBCellResult]]:
    """Execute the grid; results keyed ``[workload][system]``.

    ``runner=None`` runs cells inline; a :class:`SweepRunner` adds
    process-pool fan-out and the on-disk cache.  Assembly is spec-order
    either way, so the mapping is deterministic.
    """
    spec = ycsb_sweep_spec(
        workloads=workloads, n_ops=n_ops, population=population, **kwargs
    )
    cells = execute_spec(spec, runner)
    table: Dict[str, Dict[str, YCSBCellResult]] = {}
    for cell in cells:
        table.setdefault(cell.workload, {})[cell.system] = cell
    return table
