"""YCSB-style workloads (the paper's future-work benchmark).

The paper's methodology rejects YCSB only because no database engine
interfacing YCSB with the KV-SSD existed at the time (Sec. III), and its
conclusion lists exploring "real-world workloads and benchmarks, such as
YCSB" as future work.  In this reproduction the store adapters *are* the
engine, so the standard core workloads run directly:

========  =======================================  =====================
workload  operation mix                            request distribution
========  =======================================  =====================
A         50% read / 50% update                    zipfian
B         95% read / 5% update                     zipfian
C         100% read                                zipfian
D         95% read / 5% insert ("read latest")     latest-skewed reads
E         95% scan / 5% insert                     zipfian scan starts
F         50% read / 50% read-modify-write         zipfian
========  =======================================  =====================

Scans (workload E) deserve a caveat the paper would have cared about:
the KV-SSD has no ordered iteration — only 4-byte-prefix iterator
buckets — so a "scan" against the KV device walks bucket pages and
filters, whereas the LSM store serves genuine ordered ranges.  The
:mod:`examples` and benches surface exactly this contrast.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import WorkloadError
from repro.kvbench.distributions import ZipfianGenerator
from repro.kvbench.workload import Operation, OpType
from repro.kvftl.population import KeyScheme

#: The YCSB default record: 10 fields x 100 B.
YCSB_VALUE_BYTES = 1000
#: Default scan length (records per scan).
YCSB_SCAN_LENGTH = 50


@dataclass(frozen=True)
class YCSBSpec:
    """One YCSB core-workload configuration."""

    workload: str  # 'A'..'F'
    n_ops: int
    population: int
    key_scheme: KeyScheme = field(
        default_factory=lambda: KeyScheme(prefix=b"user", digits=12)
    )
    value_bytes: int = YCSB_VALUE_BYTES
    scan_length: int = YCSB_SCAN_LENGTH
    zipf_theta: float = 0.99
    seed: int = 1

    #: (read, update, insert, scan, rmw) fractions per core workload.
    MIXES = {
        "A": (0.50, 0.50, 0.00, 0.00, 0.00),
        "B": (0.95, 0.05, 0.00, 0.00, 0.00),
        "C": (1.00, 0.00, 0.00, 0.00, 0.00),
        "D": (0.95, 0.00, 0.05, 0.00, 0.00),
        "E": (0.00, 0.00, 0.05, 0.95, 0.00),
        "F": (0.50, 0.00, 0.00, 0.00, 0.50),
    }

    def __post_init__(self) -> None:
        if self.workload not in self.MIXES:
            raise WorkloadError(
                f"unknown YCSB workload {self.workload!r}; pick A-F"
            )
        if self.n_ops < 1 or self.population < 1:
            raise WorkloadError("n_ops and population must be >= 1")
        if self.scan_length < 1:
            raise WorkloadError("scan_length must be >= 1")

    @property
    def mix(self):
        """The workload's operation-fraction tuple."""
        return self.MIXES[self.workload]


@dataclass(frozen=True)
class YCSBOperation:
    """A YCSB request: a plain Operation plus scan metadata."""

    base: Operation
    scan_length: int = 0

    @property
    def is_scan(self) -> bool:
        return self.scan_length > 0

    # Delegates so the standard workload runner can drive YCSB streams.

    @property
    def op(self) -> OpType:
        return self.base.op

    @property
    def key(self) -> bytes:
        return self.base.key

    @property
    def key_index(self) -> int:
        return self.base.key_index

    @property
    def value_bytes(self) -> int:
        return self.base.value_bytes


def generate_ycsb(spec: YCSBSpec) -> Iterator[YCSBOperation]:
    """Deterministic YCSB operation stream for ``spec``.

    Workload D's "read latest" is modeled as reads skewed toward the most
    recently inserted region (zipf over recency), exactly YCSB's intent.
    Inserts extend the key space past ``population``.
    """
    mix_rng = random.Random(spec.seed)
    zipf = ZipfianGenerator(spec.population, spec.zipf_theta, spec.seed + 1)
    latest = ZipfianGenerator(
        spec.population, spec.zipf_theta, spec.seed + 2, scramble=False
    )
    read_f, update_f, insert_f, scan_f, rmw_f = spec.mix
    next_insert = spec.population
    inserted = 0

    for _ in range(spec.n_ops):
        draw = mix_rng.random()
        if draw < read_f:
            if spec.workload == "D":
                # Read latest: rank 0 = newest key so far.
                recency = latest.next_index() % (spec.population + inserted)
                index = (spec.population + inserted - 1) - recency
            else:
                index = zipf.next_index()
            yield YCSBOperation(
                Operation(OpType.READ, spec.key_scheme.key_for(index), index, 0)
            )
        elif draw < read_f + update_f:
            index = zipf.next_index()
            yield YCSBOperation(
                Operation(
                    OpType.UPDATE,
                    spec.key_scheme.key_for(index),
                    index,
                    spec.value_bytes,
                )
            )
        elif draw < read_f + update_f + insert_f:
            index = next_insert
            next_insert += 1
            inserted += 1
            yield YCSBOperation(
                Operation(
                    OpType.INSERT,
                    spec.key_scheme.key_for(index),
                    index,
                    spec.value_bytes,
                )
            )
        elif draw < read_f + update_f + insert_f + scan_f:
            index = zipf.next_index()
            yield YCSBOperation(
                Operation(OpType.READ, spec.key_scheme.key_for(index), index, 0),
                scan_length=spec.scan_length,
            )
        else:  # read-modify-write
            index = zipf.next_index()
            yield YCSBOperation(
                Operation(
                    OpType.UPDATE,
                    spec.key_scheme.key_for(index),
                    index,
                    spec.value_bytes,
                ),
                scan_length=-1,  # marker consumed by the driver below
            )


class YCSBDriver:
    """Executes YCSB operations against a store adapter.

    Point operations delegate to the adapter.  Scans and read-modify-
    writes are composed here from the primitive operations each stack
    offers, which is where the KV-SSD's lack of ordered iteration shows:

    * LSM adapter: a scan is ``scan(start, n)`` on the store (ordered);
    * KV adapter: a scan is a device prefix-iteration plus ``n`` point
      reads of the following keys (the application must emulate order);
    * read-modify-write is a read followed by an update everywhere.
    """

    def __init__(self, adapter, spec: YCSBSpec) -> None:
        self.adapter = adapter
        self.spec = spec
        # Surface the wrapped adapter's device so the runner's DeviceStats
        # capture works through the YCSB layer too.
        self.device = getattr(adapter, "device", None)
        self.scans_run = 0
        self.rmws_run = 0

    def execute(self, op):
        # Trace replay feeds mixed streams: plain Operations for point
        # ops, YCSBOperations only where scan metadata is needed.
        scan_length = getattr(op, "scan_length", 0)
        if scan_length > 0:
            return self._scan(op)
        if scan_length == -1:
            return self._read_modify_write(op)
        return self.adapter.execute(getattr(op, "base", op))

    def _scan(self, op: YCSBOperation):
        self.scans_run += 1
        store = getattr(self.adapter, "store", None)
        if store is not None and hasattr(store, "scan"):
            return store.scan(op.base.key, op.scan_length)
        return self._emulated_scan(op)

    def _emulated_scan(self, op: YCSBOperation):
        spec = self.spec

        def runner(env):
            total = 0
            api = getattr(self.adapter, "api", None)
            if api is not None and hasattr(api, "iterate"):
                # Touch the device-side iterator bucket first (the KV-SSD
                # has no ordered scan; Sec. II's buckets are the closest).
                yield env.process(api.iterate(op.base.key[:4], limit=1))
            for step in range(spec.scan_length):
                index = op.base.key_index + step
                if index >= spec.population:
                    break
                point = Operation(
                    OpType.READ, spec.key_scheme.key_for(index), index, 0
                )
                try:
                    nbytes = yield env.process(self.adapter.execute(point))
                except Exception:  # missing tail keys end the scan
                    break
                total += nbytes or 0
            return total

        # The runner calls execute(op) and yields the returned generator
        # via env.process; grab the env lazily from the adapter's store.
        env = _env_of(self.adapter)
        return runner(env)

    def _read_modify_write(self, op: YCSBOperation):
        self.rmws_run += 1

        def runner(env):
            read = Operation(OpType.READ, op.base.key, op.base.key_index, 0)
            yield env.process(self.adapter.execute(read))
            nbytes = yield env.process(self.adapter.execute(op.base))
            return nbytes

        return runner(_env_of(self.adapter))


def _env_of(adapter):
    """The simulation environment behind any store adapter."""
    for attribute in ("api", "store"):
        owner = getattr(adapter, attribute, None)
        if owner is not None and hasattr(owner, "env"):
            return owner.env
    raise WorkloadError(f"cannot locate environment of {adapter!r}")
