"""Access-pattern generators: sequential, uniform random, Zipfian, sliding
window.

These are the KVbench knobs the paper's methodology section lists (Sec.
III): sequential, uniformly random, and Zipf-skewed key orders, plus the
sliding-window pseudo-random pattern its footnote describes for the GC
experiment ("a small sliding window across the whole distribution of keys
from the insert phase, randomly choosing keys within the window").

All generators draw key *indices* in ``[0, population)``; the workload
layer maps indices to keys through a :class:`~repro.kvftl.population.
KeyScheme`, so patterns compose with any key naming.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import WorkloadError


def sequential_indices(population: int, count: int, start: int = 0) -> Iterator[int]:
    """``count`` indices walking the population in order, wrapping around."""
    _check(population, count)
    for step in range(count):
        yield (start + step) % population


def uniform_indices(
    population: int, count: int, seed: int = 1
) -> Iterator[int]:
    """``count`` independent uniform draws."""
    _check(population, count)
    rng = random.Random(seed)
    for _ in range(count):
        yield rng.randrange(population)


class ZipfianGenerator:
    """Zipf-distributed indices via the YCSB/Gray et al. algorithm.

    Constant-time draws after an O(population) harmonic precomputation.
    ``scramble=True`` hashes ranks across the key space so the hot set is
    scattered (YCSB's scrambled-zipfian), which is what a hash-indexed
    device actually experiences.
    """

    def __init__(
        self,
        population: int,
        theta: float = 0.99,
        seed: int = 1,
        scramble: bool = True,
    ) -> None:
        if population < 1:
            raise WorkloadError(f"population must be >= 1, got {population}")
        if not 0.0 < theta < 1.0:
            raise WorkloadError(f"zipf theta must be in (0, 1), got {theta}")
        self.population = population
        self.theta = theta
        self.scramble = scramble
        self._rng = random.Random(seed)
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, population + 1))
        self._zeta2 = 1.0 + 0.5 ** theta if population >= 2 else 1.0
        self._alpha = 1.0 / (1.0 - theta)
        # eta only matters for ranks >= 2, so tiny populations (whose
        # zeta(2) equals zeta(n), a zero denominator) simply skip it.
        self._eta = (
            (1.0 - (2.0 / population) ** (1.0 - theta))
            / (1.0 - self._zeta2 / self._zetan)
            if population >= 3
            else 0.0
        )

    def next_index(self) -> int:
        """Draw one index (rank 0 is the hottest)."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0 or self.population == 1:
            rank = 0
        elif uz < self._zeta2:
            rank = 1
        else:
            rank = int(self.population * (self._eta * u - self._eta + 1.0) ** self._alpha)
            rank = min(rank, self.population - 1)
        if not self.scramble:
            return rank
        # FNV-style scatter keeps the draw O(1) and deterministic.
        scrambled = (rank * 0x100000001B3 + 0x9E3779B9) & 0xFFFFFFFFFFFFFFFF
        return scrambled % self.population

    def indices(self, count: int) -> Iterator[int]:
        """``count`` consecutive draws."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        for _ in range(count):
            yield self.next_index()


def zipfian_indices(
    population: int, count: int, theta: float = 0.99, seed: int = 1
) -> Iterator[int]:
    """Convenience wrapper over :class:`ZipfianGenerator`."""
    _check(population, count)
    return ZipfianGenerator(population, theta, seed).indices(count)


def sliding_window_indices(
    population: int,
    count: int,
    window_fraction: float = 0.05,
    seed: int = 1,
) -> Iterator[int]:
    """The paper's pseudo-random update pattern (Fig. 6c footnote).

    A window of ``window_fraction * population`` keys slides across the
    insert-order key space; each draw is uniform inside the current
    window.  The window advances so that it traverses the whole population
    exactly once over ``count`` draws.
    """
    _check(population, count)
    if not 0.0 < window_fraction <= 1.0:
        raise WorkloadError(
            f"window fraction must be in (0, 1], got {window_fraction}"
        )
    rng = random.Random(seed)
    window = max(1, int(population * window_fraction))

    def generate() -> Iterator[int]:
        for step in range(count):
            base = int(step / max(count, 1) * population)
            yield (base + rng.randrange(window)) % population

    return generate()


def _check(population: int, count: int) -> None:
    if population < 1:
        raise WorkloadError(f"population must be >= 1, got {population}")
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
