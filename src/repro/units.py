"""Unit helpers and constants used across the simulator.

The simulator's clock is denominated in **microseconds** and sizes in
**bytes**.  These helpers exist so that configuration code reads like the
datasheets it is transcribed from (``4 * KIB``, ``ms(5)``), instead of long
runs of zeros that are easy to miscount.
"""

from __future__ import annotations

#: One kibibyte in bytes.
KIB = 1024
#: One mebibyte in bytes.
MIB = 1024 * KIB
#: One gibibyte in bytes.
GIB = 1024 * MIB
#: One tebibyte in bytes.
TIB = 1024 * GIB

#: One microsecond, the base time unit of the simulation clock.
USEC = 1.0
#: One millisecond expressed in microseconds.
MSEC = 1000.0
#: One second expressed in microseconds.
SEC = 1_000_000.0


def ms(value: float) -> float:
    """Convert milliseconds to simulator time (microseconds)."""
    return value * MSEC


def sec(value: float) -> float:
    """Convert seconds to simulator time (microseconds)."""
    return value * SEC


def to_ms(usecs: float) -> float:
    """Convert simulator time (microseconds) to milliseconds."""
    return usecs / MSEC


def to_sec(usecs: float) -> float:
    """Convert simulator time (microseconds) to seconds."""
    return usecs / SEC


def mib_per_sec(nbytes: float, usecs: float) -> float:
    """Bandwidth in MiB/s for ``nbytes`` transferred over ``usecs``.

    Returns 0.0 for a zero-length interval instead of dividing by zero, so
    that bandwidth reporting of degenerate windows is well defined.
    """
    if usecs <= 0.0:
        return 0.0
    return (nbytes / MIB) / (usecs / SEC)


def pretty_size(nbytes: float) -> str:
    """Render a byte count with a binary-unit suffix (e.g. ``'24.0KiB'``)."""
    magnitude = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if abs(magnitude) < 1024.0:
            return f"{magnitude:.1f}{suffix}" if suffix != "B" else f"{int(magnitude)}B"
        magnitude /= 1024.0
    return f"{magnitude:.1f}TiB"


def pretty_time(usecs: float) -> str:
    """Render a duration with the most readable unit (us, ms, or s)."""
    if usecs < MSEC:
        return f"{usecs:.1f}us"
    if usecs < SEC:
        return f"{usecs / MSEC:.2f}ms"
    return f"{usecs / SEC:.2f}s"


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + (alignment - remainder)


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division, the number of full-or-partial buckets."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


#: Default tolerance for comparing simulated timestamps (microseconds).
#: Simulated times are float sums of float service costs, so two paths
#: to the "same" instant can differ by accumulated rounding; a picosecond
#: -scale epsilon is far below any modeled cost and far above any drift.
TIME_EPSILON_US = 1e-6


def times_equal(a_us: float, b_us: float,
                tolerance_us: float = TIME_EPSILON_US) -> bool:
    """Whether two simulated timestamps coincide within tolerance.

    This is the sanctioned way to compare simulated times for equality —
    ``==`` / ``!=`` on timestamps is rejected by simlint rule SIM004.
    """
    if tolerance_us < 0.0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance_us}")
    return abs(a_us - b_us) <= tolerance_us


def time_before(a_us: float, b_us: float,
                tolerance_us: float = TIME_EPSILON_US) -> bool:
    """Whether ``a_us`` is strictly before ``b_us``, beyond tolerance."""
    if tolerance_us < 0.0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance_us}")
    return a_us < b_us - tolerance_us
