"""Open-loop serving frontend: arrivals, admission, batching, SLO dispatch.

The paper drives devices closed-loop at a fixed queue depth (Sec. III);
this package models the serving path in front of that device — an
open-loop arrival process feeding an event-loop frontend that batches
commands into the NVMe submission model, sheds load when the admission
queue fills, and schedules SLO classes deadline-aware.  Offered load
becomes an independent variable, which is what turns fig4's queue-depth
sweep into a latency-vs-offered-load curve with a saturation knee.
"""

from repro.frontend.arrivals import ArrivalSpec, generate_arrivals
from repro.frontend.frontend import (
    FrontendRunResult,
    Request,
    ServingFrontend,
    run_frontend,
)
from repro.frontend.run import FrontendLoadResult, frontend_load_sweep
from repro.frontend.spec import FrontendSpec, SLOClass, TenantLoad

__all__ = [
    "ArrivalSpec",
    "generate_arrivals",
    "FrontendSpec",
    "SLOClass",
    "TenantLoad",
    "Request",
    "ServingFrontend",
    "FrontendRunResult",
    "run_frontend",
    "FrontendLoadResult",
    "frontend_load_sweep",
]
