"""The frontend load sweep: latency vs offered load, per SLO class.

Each sweep point runs one fixed two-tenant scenario — a latency-sensitive
read tenant (Poisson arrivals, tight deadline) and a bursty batch tenant
(MMPP arrivals, loose deadline) — at one offered load.  Points are
independent :class:`~repro.exec.spec.SweepPoint` cells, so the sweep fans
out over the process pool and caches like every other figure.

The result is the serving-path curve the ROADMAP calls for: p50/p99/p999
vs offered load with a saturation knee.  Below the knee the tail tracks
device service time; above it the pre-submit queueing phases absorb the
excess — :meth:`FrontendLoadResult.queueing_share` quantifies how much of
the added tail is queueing, straight from the request timestamp trails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.exec.runner import SweepRunner, execute_spec
from repro.exec.spec import SweepPoint, SweepSpec
from repro.frontend.arrivals import ArrivalSpec
from repro.frontend.frontend import PHASES, run_frontend
from repro.frontend.spec import FrontendSpec, SLOClass, TenantLoad

#: The sweep's SLO classes: a tight latency class and a bulk class.
LATENCY_CLASS = SLOClass(name="lat", deadline_us=2_000.0)
BATCH_CLASS = SLOClass(name="bulk", deadline_us=20_000.0)

#: Fraction of the offered load carried by the latency tenant.
LATENCY_SHARE = 0.7

#: p99 inflation over the lowest load that marks the saturation knee.
KNEE_FACTOR = 1.75

#: Default offered loads (kops).  The low end sits on the device-bound
#: plateau (p99 flat within noise), the high end far past saturation.
DEFAULT_LOADS_KOPS = (16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


def build_load_spec(
    load_ops_s: float,
    n_requests: int,
    admit_capacity: int = 512,
    batch_max: int = 8,
    batch_linger_us: float = 20.0,
    dispatch_width: int = 8,
    scheduler: str = "edf",
    personality: str = "kv",
    value_bytes: int = 4096,
    bulk_value_bytes: int = 512,
    bulk_read_fraction: float = 0.7,
    population: int = 400,
    blocks_per_plane: int = 8,
    seed: int = 1,
) -> FrontendSpec:
    """The fixed two-tenant scenario at one offered load.

    ``n_requests`` is the total request count, split by tenant share, so
    every sweep point offers the same amount of work at a different rate.
    """
    lat_requests = max(1, round(n_requests * LATENCY_SHARE))
    bulk_requests = max(1, n_requests - lat_requests)
    tenants = (
        TenantLoad(
            name="lat",
            slo=LATENCY_CLASS.name,
            arrivals=ArrivalSpec(
                rate_ops_s=load_ops_s * LATENCY_SHARE,
                n_requests=lat_requests,
                process="poisson",
                seed=seed,
            ),
            op="read",
            value_bytes=value_bytes,
            population=population,
            seed=seed,
        ),
        TenantLoad(
            name="bulk",
            slo=BATCH_CLASS.name,
            arrivals=ArrivalSpec(
                rate_ops_s=load_ops_s * (1.0 - LATENCY_SHARE),
                n_requests=bulk_requests,
                process="mmpp",
                seed=seed + 1,
            ),
            op="mixed",
            read_fraction=bulk_read_fraction,
            value_bytes=bulk_value_bytes,
            population=population,
            seed=seed + 1,
        ),
    )
    return FrontendSpec(
        classes=(LATENCY_CLASS, BATCH_CLASS),
        tenants=tenants,
        personality=personality,
        admit_capacity=admit_capacity,
        batch_max=batch_max,
        batch_linger_us=batch_linger_us,
        dispatch_width=dispatch_width,
        scheduler=scheduler,
        blocks_per_plane=blocks_per_plane,
        seed=seed,
    )


def _frontend_load_cell(
    load_ops_s: float,
    n_requests: int,
    scheduler: str,
    personality: str,
    blocks_per_plane: int,
    seed: int,
) -> Dict[str, object]:
    """One offered-load point, reduced to plain picklable metrics."""
    spec = build_load_spec(
        load_ops_s=load_ops_s,
        n_requests=n_requests,
        scheduler=scheduler,
        personality=personality,
        blocks_per_plane=blocks_per_plane,
        seed=seed,
    )
    result = run_frontend(spec)
    classes: Dict[str, Dict[str, float]] = {}
    for name, stats in result.per_class.items():
        cell: Dict[str, float] = {
            "offered": float(stats.offered),
            "shed": float(stats.shed),
            "completed": float(stats.completed),
            "failed": float(stats.failed),
            "violations": float(stats.slo_violations),
        }
        if stats.latency is not None and stats.queueing is not None:
            cell.update(
                p50=stats.latency.p50,
                p99=stats.latency.p99,
                p999=stats.latency.p999,
                queue_p50=stats.queueing.p50,
                queue_p99=stats.queueing.p99,
            )
            for phase in PHASES:
                cell[f"{phase}_us"] = stats.phase_means[phase]
        classes[name] = cell
    return {
        "classes": classes,
        "throughput_kops": result.throughput_kops(),
        "mean_batch": result.mean_batch_size,
        "elapsed_us": result.elapsed_us,
        "shed": float(result.shed),
        "offered": float(result.offered),
    }


@dataclass
class FrontendLoadResult:
    """Per-SLO-class tail latency and shed fraction vs offered load."""

    loads_kops: Tuple[float, ...]
    class_names: Tuple[str, ...]
    #: class -> load (kops) -> value.
    p50: Dict[str, Dict[float, float]] = field(default_factory=dict)
    p99: Dict[str, Dict[float, float]] = field(default_factory=dict)
    p999: Dict[str, Dict[float, float]] = field(default_factory=dict)
    queue_p99: Dict[str, Dict[float, float]] = field(default_factory=dict)
    shed_fraction: Dict[str, Dict[float, float]] = field(default_factory=dict)
    violation_fraction: Dict[str, Dict[float, float]] = field(
        default_factory=dict
    )
    phase_means: Dict[str, Dict[float, Dict[str, float]]] = field(
        default_factory=dict
    )
    throughput_kops: Dict[float, float] = field(default_factory=dict)
    mean_batch: Dict[float, float] = field(default_factory=dict)

    def knee_kops(self, cls: str = LATENCY_CLASS.name) -> Optional[float]:
        """Lowest load whose p99 exceeds ``KNEE_FACTOR`` x the baseline.

        ``None`` when the sweep never saturates.
        """
        baseline = self.p99[cls][self.loads_kops[0]]
        for load in self.loads_kops[1:]:
            if self.p99[cls][load] > KNEE_FACTOR * baseline:
                return load
        return None

    def queueing_share(self, cls: str, load_kops: float) -> float:
        """Fraction of the p99 latency added over the baseline load that
        is frontend queueing (pre-submit wait), per the timestamp trails."""
        base = self.loads_kops[0]
        added_total = self.p99[cls][load_kops] - self.p99[cls][base]
        if added_total <= 0.0:
            return 0.0
        added_queue = self.queue_p99[cls][load_kops] - self.queue_p99[cls][base]
        return added_queue / added_total


def frontend_load_sweep(
    loads_kops: Sequence[float] = DEFAULT_LOADS_KOPS,
    n_requests: int = 800,
    scheduler: str = "edf",
    personality: str = "kv",
    blocks_per_plane: int = 8,
    seed: int = 1,
    runner: Optional[SweepRunner] = None,
) -> FrontendLoadResult:
    """Sweep offered load; one independent cell per load point."""
    points = tuple(
        SweepPoint(
            label=f"{personality}/{scheduler}/{load_kops:g}kops",
            fn=_frontend_load_cell,
            kwargs=dict(
                load_ops_s=load_kops * 1000.0,
                n_requests=n_requests,
                scheduler=scheduler,
                personality=personality,
                blocks_per_plane=blocks_per_plane,
                seed=seed,
            ),
        )
        for load_kops in loads_kops
    )
    cells = execute_spec(SweepSpec("frontend", points), runner)
    class_names = (LATENCY_CLASS.name, BATCH_CLASS.name)
    result = FrontendLoadResult(
        loads_kops=tuple(loads_kops), class_names=class_names
    )
    for name in class_names:
        result.p50[name] = {}
        result.p99[name] = {}
        result.p999[name] = {}
        result.queue_p99[name] = {}
        result.shed_fraction[name] = {}
        result.violation_fraction[name] = {}
        result.phase_means[name] = {}
    for load_kops, cell in zip(loads_kops, cells):
        result.throughput_kops[load_kops] = cell["throughput_kops"]
        result.mean_batch[load_kops] = cell["mean_batch"]
        for name in class_names:
            stats = cell["classes"][name]
            result.p50[name][load_kops] = stats.get("p50", 0.0)
            result.p99[name][load_kops] = stats.get("p99", 0.0)
            result.p999[name][load_kops] = stats.get("p999", 0.0)
            result.queue_p99[name][load_kops] = stats.get("queue_p99", 0.0)
            offered = stats["offered"]
            result.shed_fraction[name][load_kops] = (
                stats["shed"] / offered if offered else 0.0
            )
            terminal = stats["completed"] + stats["failed"]
            result.violation_fraction[name][load_kops] = (
                stats["violations"] / terminal if terminal else 0.0
            )
            result.phase_means[name][load_kops] = {
                phase: stats.get(f"{phase}_us", 0.0) for phase in PHASES
            }
    return result
