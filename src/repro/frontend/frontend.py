"""The event-loop serving frontend: admit, batch, schedule, dispatch.

Requests arrive open-loop (``frontend.arrivals``), pass an admission
check against a bounded queue, wait in per-SLO-class FIFO queues, get
coalesced into batches, and dispatch onto the device at a bounded
concurrency.  Every request carries its full timestamp trail —

    arrival -> admit -> batch -> submit -> device -> complete

— so queueing delay is attributed exactly: everything before ``submit``
is frontend queueing, everything after is device service.  When offered
load exceeds device capacity the pre-submit phases absorb the excess,
which is the saturation knee the load sweep measures.

Determinism: the arrival schedule is precomputed from seeded generators,
the event loop runs on the simulation engine's total event order, and
dispatchers break ties by class index — the same spec always produces
byte-identical results.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    Generator,
    List,
    Optional,
    Protocol,
    Tuple,
)

from repro.errors import DeviceError
from repro.frontend.arrivals import generate_arrivals
from repro.frontend.spec import FrontendSpec, TenantLoad
from repro.kvbench.workload import (
    Operation,
    Pattern,
    WorkloadSpec,
    generate_operations,
)
from repro.kvftl.population import KeyScheme
from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.nvme.command import NvmeStatus, status_for_error
from repro.sim.engine import Environment, Event
from repro.sim.signal import Signal
from repro.trace.tracer import Tracer

#: Queueing-attribution phases, in timestamp-trail order.
PHASES = ("admit", "queue", "dispatch", "device")


class StoreAdapter(Protocol):
    """What the frontend needs from a kvbench store adapter."""

    def execute(self, op: Operation) -> Generator[Event, None, int]:
        ...


class Request:
    """One open-loop request and its timestamp trail (all times us)."""

    __slots__ = (
        "seq", "tenant", "slo", "op", "deadline_us",
        "arrival_us", "admit_us", "batch_us", "submit_us", "complete_us",
        "batch_seq", "shed", "status",
    )

    def __init__(
        self,
        seq: int,
        tenant: str,
        slo: str,
        op: Operation,
        arrival_us: float,
        deadline_us: float,
    ) -> None:
        self.seq = seq
        self.tenant = tenant
        self.slo = slo
        self.op = op
        self.arrival_us = arrival_us
        self.deadline_us = deadline_us
        self.admit_us = -1.0
        self.batch_us = -1.0
        self.submit_us = -1.0
        self.complete_us = -1.0
        self.batch_seq = -1
        self.shed = False
        self.status = NvmeStatus.SUCCESS

    @property
    def latency_us(self) -> float:
        """End-to-end latency as the client sees it."""
        return self.complete_us - self.arrival_us

    @property
    def queue_wait_us(self) -> float:
        """Time spent in the frontend before device submission."""
        return self.submit_us - self.arrival_us

    @property
    def violated_slo(self) -> bool:
        """Whether the request completed past its class deadline."""
        return self.latency_us > self.deadline_us


def _tenant_scheme(tenant: TenantLoad) -> KeyScheme:
    """Disjoint per-tenant key range: name-prefixed, 16-byte keys."""
    prefix = tenant.name.encode("ascii") + b"-"
    return KeyScheme(prefix=prefix, digits=max(1, 16 - len(prefix)))


def _tenant_operations(tenant: TenantLoad) -> WorkloadSpec:
    """The kvbench workload spec backing one tenant's request stream.

    The same key scheme primes the population before the open-loop
    phase, so reads and updates always address existing pairs.
    """
    return WorkloadSpec(
        n_ops=tenant.arrivals.n_requests,
        op=tenant.op,
        pattern=Pattern.UNIFORM,
        population=tenant.population,
        key_scheme=_tenant_scheme(tenant),
        value_bytes=tenant.value_bytes,
        read_fraction=tenant.read_fraction,
        seed=tenant.seed,
    )


def build_schedule(spec: FrontendSpec) -> List[Request]:
    """Merge every tenant's arrival stream into one request schedule.

    The merge is keyed ``(arrival_us, tenant_index, per-tenant seq)`` so
    simultaneous arrivals order deterministically; per-tenant request
    order always equals per-tenant arrival order.
    """
    def stream(
        tenant_index: int, tenant: TenantLoad
    ) -> Generator[Tuple[float, int, int, str, str, Operation, float], None, None]:
        deadline = spec.classes[spec.class_index(tenant.slo)].deadline_us
        ops = generate_operations(_tenant_operations(tenant))
        times = generate_arrivals(tenant.arrivals)
        for seq, (arrival, op) in enumerate(zip(times, ops)):
            yield (arrival, tenant_index, seq, tenant.name, tenant.slo,
                   op, deadline)

    streams = [
        stream(tenant_index, tenant)
        for tenant_index, tenant in enumerate(spec.tenants)
    ]
    schedule: List[Request] = []
    merged = heapq.merge(*streams)
    for global_seq, (arrival, _, _, name, slo, op, deadline) in enumerate(merged):
        schedule.append(Request(global_seq, name, slo, op, arrival, deadline))
    return schedule


class ServingFrontend:
    """Admission control, per-class queues, batching, and dispatch.

    ``adapter`` is any kvbench store adapter (``execute(op)`` generator);
    the frontend never bypasses it, so the device path is exactly the one
    the closed-loop figures exercise.
    """

    def __init__(
        self,
        env: Environment,
        adapter: StoreAdapter,
        spec: FrontendSpec,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.env = env
        self.adapter = adapter
        self.spec = spec
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self._queues: Tuple[Deque[Request], ...] = tuple(
            deque() for _ in spec.classes
        )
        self._signal = Signal(env, "frontend")
        self._pending = 0
        self._arrivals_done = False
        self._batch_seq = 0
        #: All requests that reached a terminal state, in completion order
        #: (shed requests terminate at arrival).
        self.finished: List[Request] = []
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.batched_requests = 0

    # -- arrival + admission --------------------------------------------

    def arrival_process(
        self, schedule: List[Request]
    ) -> Generator[Event, None, None]:
        """Open-loop arrivals: admit or shed each request at its time."""
        spec = self.spec
        for request in schedule:
            delay = request.arrival_us - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if spec.admit_cpu_us > 0:
                # The accept loop is single-threaded; admission work
                # serializes here, so arrival bursts back up visibly in
                # the admit phase.
                yield self.env.timeout(spec.admit_cpu_us)
            self.offered += 1
            if self._pending >= spec.admit_capacity:
                request.shed = True
                request.status = NvmeStatus.COMMAND_INTERRUPTED
                request.complete_us = self.env.now
                self.shed += 1
                self.finished.append(request)
                if self.tracer.wants("host"):
                    self.tracer.instant(
                        "frontend", "shed", "host",
                        {"tenant": request.tenant, "slo": request.slo},
                    )
                continue
            request.admit_us = self.env.now
            self._pending += 1
            self.admitted += 1
            self._queues[spec.class_index(request.slo)].append(request)
            self._signal.notify_all()
        self._arrivals_done = True
        self._signal.notify_all()

    # -- scheduling ------------------------------------------------------

    def _pick_class(self) -> int:
        """Index of the class to dispatch next; -1 when all queues empty.

        EDF: the non-empty class whose head request's absolute deadline
        (arrival + class deadline) is earliest.  An aged head's deadline
        recedes into the past, so no backlogged class waits forever —
        starvation-freedom is structural, not a tuned escape valve.
        FIFO ignores deadlines and serves global arrival order.
        """
        best = -1
        best_key = 0.0
        for index, queue in enumerate(self._queues):
            if not queue:
                continue
            head = queue[0]
            key = (
                head.arrival_us + head.deadline_us
                if self.spec.scheduler == "edf"
                else head.arrival_us
            )
            if best < 0 or key < best_key:
                best = index
                best_key = key
        return best

    def dispatcher(self) -> Generator[Event, None, None]:
        """One dispatch worker: form a batch, pay overhead, run it."""
        spec = self.spec
        while True:
            picked = self._pick_class()
            if picked < 0:
                if self._arrivals_done and self._pending == 0:
                    return
                yield self._signal.wait()
                continue
            queue = self._queues[picked]
            if (
                len(queue) < spec.batch_max
                and spec.batch_linger_us > 0
                and not self._arrivals_done
            ):
                # Linger once for coalescing, then re-pick: arrivals
                # during the linger may have changed the EDF order.
                yield self.env.timeout(spec.batch_linger_us)
                picked = self._pick_class()
                if picked < 0:
                    continue
                queue = self._queues[picked]
            batch: List[Request] = []
            now = self.env.now
            while queue and len(batch) < spec.batch_max:
                request = queue.popleft()
                request.batch_us = now
                request.batch_seq = self._batch_seq
                self._batch_seq += 1
                batch.append(request)
            self.batches += 1
            self.batched_requests += len(batch)
            if spec.batch_overhead_us > 0:
                # One event-loop wakeup and doorbell write per batch —
                # the fixed cost coalescing amortizes.
                yield self.env.timeout(spec.batch_overhead_us)
            if self.tracer.wants("host"):
                self.tracer.complete(
                    "frontend", "batch", "host",
                    self.env.now - now,
                    {"size": len(batch), "slo": batch[0].slo},
                )
            ops = [
                self.env.process(
                    self._execute(request),
                    name=f"fe.{request.slo}.{request.seq}",
                )
                for request in batch
            ]
            yield self.env.all_of(ops)

    # -- device execution ------------------------------------------------

    def _execute(self, request: Request) -> Generator[Event, None, None]:
        request.submit_us = self.env.now
        try:
            yield self.env.process(self.adapter.execute(request.op))
        except DeviceError as exc:
            request.status = status_for_error(exc)
            self.failed += 1
        else:
            request.status = NvmeStatus.SUCCESS
            self.completed += 1
        request.complete_us = self.env.now
        if self.tracer.wants("host"):
            self.tracer.complete(
                "frontend", "serve", "host",
                request.complete_us - request.arrival_us,
                {"tenant": request.tenant, "slo": request.slo,
                 "queue_us": round(request.queue_wait_us, 3)},
            )
        self.finished.append(request)
        self._pending -= 1
        if self._pending == 0:
            # Wake parked dispatchers so they can observe completion.
            self._signal.notify_all()

    # -- run -------------------------------------------------------------

    def serve(self, schedule: List[Request]) -> Generator[Event, None, None]:
        """Run arrivals and dispatchers to completion."""
        workers = [
            self.env.process(self.dispatcher(), name=f"fe.dispatch.{i}")
            for i in range(self.spec.dispatch_width)
        ]
        arrivals = self.env.process(self.arrival_process(schedule), name="fe.arrivals")
        yield self.env.all_of([arrivals, *workers])


@dataclass
class ClassStats:
    """Per-SLO-class outcome of one open-loop run (plain picklable data)."""

    name: str
    deadline_us: float
    offered: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    slo_violations: int = 0
    #: End-to-end latency summary (completed requests only).
    latency: Optional[LatencySummary] = None
    #: Pre-submit queueing-delay summary (completed requests only).
    queueing: Optional[LatencySummary] = None
    #: Mean microseconds per attribution phase (completed requests only).
    phase_means: Dict[str, float] = field(default_factory=dict)

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def violation_fraction(self) -> float:
        terminal = self.completed + self.failed
        return self.slo_violations / terminal if terminal else 0.0


@dataclass
class FrontendRunResult:
    """Everything one :func:`run_frontend` call produced."""

    offered_ops_s: float
    elapsed_us: float
    offered: int
    admitted: int
    shed: int
    completed: int
    failed: int
    batches: int
    batched_requests: int
    per_class: Dict[str, ClassStats] = field(default_factory=dict)
    #: The full request trail, only when ``keep_requests=True``.
    requests: Optional[List[Request]] = None

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def throughput_kops(self) -> float:
        """Completed operations per millisecond of simulated time."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.completed / (self.elapsed_us / 1000.0)


def _summarize(
    spec: FrontendSpec, frontend: ServingFrontend
) -> Dict[str, ClassStats]:
    per_class: Dict[str, ClassStats] = {
        cls.name: ClassStats(name=cls.name, deadline_us=cls.deadline_us)
        for cls in spec.classes
    }
    latency: Dict[str, LatencyRecorder] = {
        cls.name: LatencyRecorder(f"fe.{cls.name}") for cls in spec.classes
    }
    queueing: Dict[str, LatencyRecorder] = {
        cls.name: LatencyRecorder(f"fe.{cls.name}.queue")
        for cls in spec.classes
    }
    phase_sums: Dict[str, Dict[str, float]] = {
        cls.name: {phase: 0.0 for phase in PHASES} for cls in spec.classes
    }
    for request in frontend.finished:
        stats = per_class[request.slo]
        stats.offered += 1
        if request.shed:
            stats.shed += 1
            continue
        stats.admitted += 1
        if request.status is NvmeStatus.SUCCESS:
            stats.completed += 1
        else:
            stats.failed += 1
        if request.violated_slo:
            stats.slo_violations += 1
        latency[request.slo].record(request.latency_us)
        queueing[request.slo].record(request.queue_wait_us)
        sums = phase_sums[request.slo]
        sums["admit"] += request.admit_us - request.arrival_us
        sums["queue"] += request.batch_us - request.admit_us
        sums["dispatch"] += request.submit_us - request.batch_us
        sums["device"] += request.complete_us - request.submit_us
    for name, stats in per_class.items():
        terminal = stats.completed + stats.failed
        if terminal:
            stats.latency = latency[name].summary()
            stats.queueing = queueing[name].summary()
            stats.phase_means = {
                phase: phase_sums[name][phase] / terminal for phase in PHASES
            }
    return per_class


def run_frontend(
    spec: FrontendSpec,
    keep_requests: bool = False,
    tracer: Optional[Tracer] = None,
) -> FrontendRunResult:
    """Build a rig, prime tenant populations, and serve the open-loop run.

    Priming inserts every tenant's key population closed-loop before the
    measured phase, so open-loop reads and updates always hit existing
    pairs; the measured phase starts at a fresh time origin.
    """
    from repro.core.experiment import build_block_rig, build_kv_rig, lab_geometry
    from repro.kvbench.runner import BlockAdapter, execute_workload

    geometry = lab_geometry(spec.blocks_per_plane)
    max_value = max(tenant.value_bytes for tenant in spec.tenants)
    if spec.personality == "kv":
        kv_rig = build_kv_rig(geometry, tracer=tracer)
        env: Environment = kv_rig.env
        adapter: StoreAdapter = kv_rig.adapter
    else:
        block_rig = build_block_rig(geometry, tracer=tracer)
        env = block_rig.env
        adapter = BlockAdapter(block_rig.api, max_value)
    for tenant in spec.tenants:
        prime = WorkloadSpec(
            n_ops=tenant.population,
            op="insert",
            pattern=Pattern.SEQUENTIAL,
            population=tenant.population,
            key_scheme=_tenant_scheme(tenant),
            value_bytes=tenant.value_bytes,
            seed=tenant.seed,
        )
        execute_workload(
            env, adapter, generate_operations(prime),
            queue_depth=16, name=f"fe.prime.{tenant.name}",
        )

    schedule = build_schedule(spec)
    # Re-origin arrivals at the post-priming clock.
    origin = env.now
    for request in schedule:
        request.arrival_us += origin
    frontend = ServingFrontend(env, adapter, spec, tracer=tracer)
    serve = env.process(frontend.serve(schedule), name="fe.serve")
    env.run_until_complete(serve)

    result = FrontendRunResult(
        offered_ops_s=spec.offered_ops_s,
        elapsed_us=env.now - origin,
        offered=frontend.offered,
        admitted=frontend.admitted,
        shed=frontend.shed,
        completed=frontend.completed,
        failed=frontend.failed,
        batches=frontend.batches,
        batched_requests=frontend.batched_requests,
        per_class=_summarize(spec, frontend),
    )
    if keep_requests:
        result.requests = list(frontend.finished)
    return result
