"""Frontend configuration: SLO classes, tenant loads, and the frontend.

A :class:`FrontendSpec` is the complete, hashable input of one open-loop
serving run — the sweep engine caches cells keyed on it, so everything
that influences the outcome must live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.frontend.arrivals import ArrivalSpec

#: Dispatch policies: deadline-aware earliest-deadline-first, or global
#: arrival order (no class differentiation — the ablation baseline).
SCHEDULERS = ("edf", "fifo")

#: Device personalities the frontend can serve.
PERSONALITIES = ("kv", "block")

#: Tenant op mixes the frontend accepts (kvbench workload kinds).
TENANT_OPS = ("read", "update", "mixed")


@dataclass(frozen=True)
class SLOClass:
    """One service class: a name and a latency deadline.

    The deadline drives both scheduling (EDF dispatches the class whose
    head request's ``arrival + deadline`` is earliest) and reporting
    (a request completing past its deadline is an SLO violation).
    """

    name: str
    deadline_us: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("SLO class name must be non-empty")
        if self.deadline_us <= 0.0:
            raise ConfigurationError(
                f"SLO deadline must be > 0 us, got {self.deadline_us}"
            )


@dataclass(frozen=True)
class TenantLoad:
    """One tenant: an arrival process plus the op mix it submits.

    Each tenant owns a disjoint key range (keys are prefixed with the
    tenant name), primed before the open-loop phase so reads and updates
    always address existing pairs.
    """

    name: str
    slo: str
    arrivals: ArrivalSpec
    op: str = "read"
    value_bytes: int = 4096
    read_fraction: float = 0.5
    population: int = 512
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.name or not self.name.isalnum():
            raise ConfigurationError(
                f"tenant name must be non-empty alphanumeric, got {self.name!r}"
            )
        if self.op not in TENANT_OPS:
            raise ConfigurationError(
                f"tenant op must be one of {TENANT_OPS}, got {self.op!r}"
            )
        if self.value_bytes < 1:
            raise ConfigurationError(
                f"value_bytes must be >= 1, got {self.value_bytes}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction outside [0, 1]")
        if self.population < 1:
            raise ConfigurationError(
                f"population must be >= 1, got {self.population}"
            )


@dataclass(frozen=True)
class FrontendSpec:
    """Everything one open-loop serving run depends on."""

    classes: Tuple[SLOClass, ...]
    tenants: Tuple[TenantLoad, ...]
    personality: str = "kv"
    #: Bounded admission queue: requests arriving while this many are in
    #: flight (queued or executing) are shed, never acknowledged.
    admit_capacity: int = 64
    #: Largest batch one dispatch takes from a class queue.
    batch_max: int = 8
    #: How long a dispatcher lingers for a short queue to fill out.
    batch_linger_us: float = 20.0
    #: Concurrent batch dispatchers (device-side concurrency is at most
    #: ``dispatch_width * batch_max`` operations in flight).
    dispatch_width: int = 4
    scheduler: str = "edf"
    #: Event-loop CPU charged per admission decision; serializes the
    #: arrival path the way a real single-threaded accept loop does.
    admit_cpu_us: float = 0.3
    #: Fixed per-batch dispatch cost (wakeup + doorbell write) — the
    #: overhead batching amortizes.
    batch_overhead_us: float = 4.0
    blocks_per_plane: int = 8
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError("frontend needs at least one SLO class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO class names: {names}")
        if not self.tenants:
            raise ConfigurationError("frontend needs at least one tenant")
        tenant_names = [tenant.name for tenant in self.tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ConfigurationError(
                f"duplicate tenant names: {tenant_names}"
            )
        known = set(names)
        for tenant in self.tenants:
            if tenant.slo not in known:
                raise ConfigurationError(
                    f"tenant {tenant.name!r} references unknown SLO class "
                    f"{tenant.slo!r}"
                )
        if self.personality not in PERSONALITIES:
            raise ConfigurationError(
                f"unknown personality {self.personality!r}; "
                f"choose from {PERSONALITIES}"
            )
        if self.admit_capacity < 1:
            raise ConfigurationError(
                f"admit_capacity must be >= 1, got {self.admit_capacity}"
            )
        if self.batch_max < 1:
            raise ConfigurationError(
                f"batch_max must be >= 1, got {self.batch_max}"
            )
        if self.batch_linger_us < 0.0:
            raise ConfigurationError(
                f"batch_linger_us must be >= 0, got {self.batch_linger_us}"
            )
        if self.dispatch_width < 1:
            raise ConfigurationError(
                f"dispatch_width must be >= 1, got {self.dispatch_width}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {SCHEDULERS}"
            )
        if self.admit_cpu_us < 0.0 or self.batch_overhead_us < 0.0:
            raise ConfigurationError("frontend CPU costs must be >= 0")

    def class_index(self, name: str) -> int:
        """Position of SLO class ``name`` in :attr:`classes`."""
        for index, cls in enumerate(self.classes):
            if cls.name == name:
                return index
        raise ConfigurationError(f"unknown SLO class {name!r}")

    @property
    def offered_requests(self) -> int:
        """Total requests the arrival processes will offer."""
        return sum(tenant.arrivals.n_requests for tenant in self.tenants)

    @property
    def offered_ops_s(self) -> float:
        """Aggregate mean offered load across tenants (ops/s)."""
        return sum(tenant.arrivals.rate_ops_s for tenant in self.tenants)
