"""Open-loop arrival processes: when requests hit the frontend.

Closed-loop runners (``kvbench.runner``) admit a new operation only when
a worker frees up, so offered load can never exceed service capacity and
queueing delay is invisible.  An *open-loop* process decides arrival
times independently of completions — the regime a serving system faces —
and makes offered load an experiment input.

Three generators cover the canonical traffic shapes:

* ``poisson`` — memoryless arrivals at a constant mean rate;
* ``mmpp`` — a two-state Markov-modulated Poisson process (baseline /
  burst), the standard bursty-traffic model;
* ``diurnal`` — an inhomogeneous Poisson process whose intensity follows
  a sinusoidal ramp (a compressed day/night cycle), realized by Lewis
  thinning.

All three draw from one seeded ``random.Random``, so a spec maps to
exactly one arrival schedule — byte-identical across runs, processes,
and cache replays.  Times are absolute simulated microseconds, strictly
increasing from zero.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.errors import ConfigurationError

#: Recognized arrival-process kinds.  ``trace`` replays recorded
#: timestamps verbatim (see :meth:`ArrivalSpec.from_trace`).
PROCESSES = ("poisson", "mmpp", "diurnal", "trace")


@dataclass(frozen=True)
class ArrivalSpec:
    """One tenant's open-loop arrival schedule.

    ``rate_ops_s`` is the long-run mean offered load; the bursty and
    diurnal processes modulate around it but keep the same mean, so
    sweeps over ``rate_ops_s`` are comparable across process kinds.
    """

    rate_ops_s: float
    n_requests: int
    process: str = "poisson"
    seed: int = 1
    #: mmpp: burst-state intensity multiplier over the baseline state.
    burst_factor: float = 8.0
    #: mmpp: long-run fraction of time spent in the burst state.
    burst_fraction: float = 0.1
    #: mmpp: mean dwell time per burst episode.
    mean_burst_us: float = 20_000.0
    #: diurnal: period of the intensity sinusoid.
    diurnal_period_us: float = 1_000_000.0
    #: diurnal: peak-to-mean modulation depth in [0, 1).
    diurnal_depth: float = 0.8
    #: trace: recorded arrival timestamps (us), replayed verbatim.
    trace_times: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.rate_ops_s <= 0.0:
            raise ConfigurationError(
                f"arrival rate must be > 0 ops/s, got {self.rate_ops_s}"
            )
        if self.n_requests < 1:
            raise ConfigurationError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if self.process not in PROCESSES:
            raise ConfigurationError(
                f"unknown arrival process {self.process!r}; "
                f"choose from {PROCESSES}"
            )
        if self.burst_factor < 1.0:
            raise ConfigurationError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if not 0.0 < self.burst_fraction < 1.0:
            raise ConfigurationError(
                f"burst_fraction must be in (0, 1), got {self.burst_fraction}"
            )
        if self.mean_burst_us <= 0.0:
            raise ConfigurationError(
                f"mean_burst_us must be > 0, got {self.mean_burst_us}"
            )
        if self.diurnal_period_us <= 0.0:
            raise ConfigurationError(
                f"diurnal_period_us must be > 0, got {self.diurnal_period_us}"
            )
        if not 0.0 <= self.diurnal_depth < 1.0:
            raise ConfigurationError(
                f"diurnal_depth must be in [0, 1), got {self.diurnal_depth}"
            )
        if self.process == "trace":
            if len(self.trace_times) != self.n_requests:
                raise ConfigurationError(
                    f"trace arrivals carry {len(self.trace_times)} "
                    f"timestamps for n_requests={self.n_requests}"
                )
            previous = 0.0
            for position, stamp in enumerate(self.trace_times):
                if stamp < previous:
                    raise ConfigurationError(
                        f"trace arrival {position} at {stamp} goes "
                        f"backwards (previous {previous})"
                    )
                previous = stamp
        elif self.trace_times:
            raise ConfigurationError(
                f"trace_times only applies to the 'trace' process, "
                f"not {self.process!r}"
            )

    @classmethod
    def from_trace(
        cls, times: Sequence[float], seed: int = 1
    ) -> "ArrivalSpec":
        """An arrival schedule replaying recorded timestamps verbatim.

        ``rate_ops_s`` is derived from the trace span so load sweeps can
        still report an offered rate; the timestamps themselves are the
        schedule (open-loop replay of a
        :meth:`repro.kvbench.traces.TraceWorkload.arrivals` stream).
        """
        stamps = tuple(float(stamp) for stamp in times)
        if not stamps:
            raise ConfigurationError("a trace arrival schedule needs "
                                     "at least one timestamp")
        span = stamps[-1] - stamps[0]
        rate = (len(stamps) / span) * 1e6 if span > 0.0 else 1e6
        return cls(
            rate_ops_s=rate,
            n_requests=len(stamps),
            process="trace",
            seed=seed,
            trace_times=stamps,
        )

    @property
    def rate_per_us(self) -> float:
        """Mean arrival intensity in requests per simulated microsecond."""
        return self.rate_ops_s / 1e6


def _poisson(spec: ArrivalSpec) -> Iterator[float]:
    rng = random.Random(spec.seed)
    rate = spec.rate_per_us
    now = 0.0
    for _ in range(spec.n_requests):
        now += rng.expovariate(rate)
        yield now


def _mmpp(spec: ArrivalSpec) -> Iterator[float]:
    # Two-state MMPP with the state intensities solved so the long-run
    # mean equals rate_ops_s: with time fraction f in the burst state at
    # B x the baseline intensity, mean = base * (1 - f + f*B).
    rng = random.Random(spec.seed)
    f = spec.burst_fraction
    base_rate = spec.rate_per_us / (1.0 - f + f * spec.burst_factor)
    rates = (base_rate, base_rate * spec.burst_factor)
    # Exponential dwell times whose means realize the burst fraction.
    dwells = (spec.mean_burst_us * (1.0 - f) / f, spec.mean_burst_us)
    state = 0
    now = 0.0
    switch_at = rng.expovariate(1.0 / dwells[state])
    emitted = 0
    while emitted < spec.n_requests:
        gap = rng.expovariate(rates[state])
        if now + gap >= switch_at:
            # The state flips before this arrival would land.  The
            # Poisson process is memoryless, so discarding the drawn gap
            # and redrawing at the new state's intensity is exact.
            now = switch_at
            state = 1 - state
            switch_at = now + rng.expovariate(1.0 / dwells[state])
            continue
        now += gap
        yield now
        emitted += 1


def _diurnal(spec: ArrivalSpec) -> Iterator[float]:
    # Inhomogeneous Poisson via Lewis thinning: draw candidates at the
    # peak intensity, accept each with probability intensity(t)/peak.
    rng = random.Random(spec.seed)
    mean = spec.rate_per_us
    peak = mean * (1.0 + spec.diurnal_depth)
    omega = 2.0 * math.pi / spec.diurnal_period_us
    now = 0.0
    emitted = 0
    while emitted < spec.n_requests:
        now += rng.expovariate(peak)
        intensity = mean * (1.0 + spec.diurnal_depth * math.sin(omega * now))
        if rng.random() * peak <= intensity:
            yield now
            emitted += 1


def _trace(spec: ArrivalSpec) -> Iterator[float]:
    return iter(spec.trace_times)


def generate_arrivals(spec: ArrivalSpec) -> Iterator[float]:
    """Deterministic arrival-time stream for ``spec``.

    Yields exactly ``spec.n_requests`` absolute times (us),
    non-decreasing (strictly increasing for the synthetic processes).
    The same spec always yields the same stream.
    """
    if spec.process == "poisson":
        return _poisson(spec)
    if spec.process == "mmpp":
        return _mmpp(spec)
    if spec.process == "trace":
        return _trace(spec)
    return _diurnal(spec)
