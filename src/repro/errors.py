"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish device-level conditions (out of space, key
not found) from programming errors (bad configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent or invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class InvariantViolation(ReproError):
    """The FTL runtime invariant checker found inconsistent device state.

    Raised only when a device is built with ``invariants=True``; it means
    the mapping, the flash array's valid-byte accounting, or the free-block
    pool disagree — i.e. an FTL bug, not a workload error.
    """


class DeviceError(ReproError):
    """Base class for device-level failures (the simulated SSD said no)."""


class DeviceFullError(DeviceError):
    """The device has no space left and garbage collection cannot free any."""


class KeyNotFoundError(DeviceError):
    """A retrieve/delete targeted a key that is not stored on the device."""


class InvalidKeyError(DeviceError):
    """The key violates the device's key constraints (length 4..255 bytes)."""


class InvalidValueError(DeviceError):
    """The value violates the device's value constraints (length 0..2 MiB)."""


class CapacityLimitError(DeviceError):
    """The device reached its maximum number of storable KV pairs."""


class AddressError(DeviceError):
    """A physical or logical address is out of range for the device."""


class MediaError(DeviceError):
    """Base class for NAND media failures (injected by the fault layer)."""

    def __init__(self, message: str, block: int = -1, page: int = -1) -> None:
        super().__init__(message)
        self.block = block
        self.page = page


class UncorrectableReadError(MediaError):
    """A page read stayed uncorrectable through every retry step."""


class ProgramFailError(MediaError):
    """A page program failed its status check; the data never landed."""


class EraseFailError(MediaError):
    """A block erase failed; the block must be retired."""


class DeviceReadOnlyError(DeviceError):
    """Grown defects exhausted the spare blocks; writes are refused."""


class WorkloadError(ReproError):
    """A workload specification cannot be generated as requested."""
