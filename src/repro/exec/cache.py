"""On-disk result cache for sweep points.

A point's cache key is a SHA-256 over its *complete inputs*: the cell
function's identity, a canonical serialization of its keyword arguments
(dataclass configs included), the point seed, and a **code-version
salt** — a hash of every ``repro`` source file.  Any edit anywhere in
the simulator invalidates the whole cache, which is deliberately
conservative: a stale hit would silently reproduce the *old* model's
numbers, the one failure mode a reproduction repo cannot afford.

Values are stored as pickles under ``.repro-cache/<k[:2]>/<k>.pkl``.
Writes are atomic (temp file + rename) so a crashed run never leaves a
truncated entry; unreadable entries are treated as misses and removed.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.exec.spec import SweepPoint

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate every existing cache entry (format changes).
_CACHE_FORMAT = 1

_salt_memo: Optional[str] = None


def code_version_salt() -> str:
    """Hash of every ``repro`` source file (path + contents), memoized.

    Computed over the installed package tree so edits to any layer of
    the simulator — not just the experiment code — invalidate cached
    results.  File discovery goes through the canonical walker in
    :mod:`repro.lint.sources`, the same one the lint pass uses, so a
    stray ``.py`` under ``__pycache__`` (or any other artifact
    directory) can neither perturb the salt nor escape analysis.
    """
    global _salt_memo
    if _salt_memo is None:
        import repro
        from repro.lint.sources import walk_python_sources

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in walk_python_sources(package_root):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _salt_memo = digest.hexdigest()
    return _salt_memo


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serializable canonical form.

    Handles the argument types sweep cells use: primitives, bytes,
    enums, dataclass instances (tagged with their class so two configs
    with equal fields but different types hash apart), and containers
    of those.  Raises ``TypeError`` for anything else rather than
    guessing — an unhashable argument means the point is not cacheable
    as written.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() round-trips doubles exactly; "1e-3" and "0.001" agree.
        return {"__float__": repr(value)}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__module__}.{type(value).__qualname__}",
                "name": value.name}
    if is_dataclass(value) and not isinstance(value, type):
        # Only constructor inputs participate in the key: init=False
        # fields are derived (precomputed geometry quantities, timing memo
        # tables) and would either duplicate the inputs or — for memo
        # state — make the key depend on what happened to run first.
        return {
            "__dataclass__": f"{type(value).__module__}.{type(value).__qualname__}",
            "fields": {
                f.name: canonical(getattr(value, f.name))
                for f in fields(value)
                if f.init
            },
        }
    if isinstance(value, dict):
        items = [(canonical(k), canonical(v)) for k, v in value.items()]
        return {"__dict__": sorted(items, key=lambda kv: json.dumps(kv[0], sort_keys=True))}
    if isinstance(value, (list, tuple)):
        return {"__seq__": [canonical(item) for item in value],
                "tuple": isinstance(value, tuple)}
    raise TypeError(
        f"cannot canonicalize {type(value).__name__} for the result cache"
    )


def point_key(point: SweepPoint, salt: Optional[str] = None) -> str:
    """Content-hash cache key of ``point`` under ``salt``."""
    document = {
        "format": _CACHE_FORMAT,
        "fn": f"{point.fn.__module__}.{point.fn.__qualname__}",
        "kwargs": canonical(dict(point.kwargs)),
        "seed": point.seed,
        "salt": code_version_salt() if salt is None else salt,
    }
    serialized = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(serialized.encode()).hexdigest()


class ResultCache:
    """Pickle store of computed point results, keyed by content hash."""

    def __init__(self, root: Union[str, "os.PathLike[str]"] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        #: Lifetime counters (a runner reports per-run deltas from these).
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit; ``(False, None)`` on a miss.

        A corrupt or unreadable entry counts as a miss and is removed so
        the recomputed value can take its place.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            path.unlink(missing_ok=True)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))
