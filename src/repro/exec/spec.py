"""Declarative sweeps: what the experiment loops actually iterate over.

A :class:`SweepPoint` names one independent experiment cell — a
module-level function plus the keyword arguments that fully determine
its result.  A :class:`SweepSpec` is an ordered tuple of points; order
is meaningful, because the runner assembles results in spec order no
matter how (or whether) the points were computed.

Points must be *self-contained*: the cell function builds every rig it
needs and returns plain data.  That is what makes them safe to ship to
a worker process and safe to cache — the function reference and the
arguments are the complete input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SweepPoint:
    """One independent experiment cell of a sweep.

    ``fn`` must be an importable module-level callable (workers resolve
    it by reference) and ``kwargs`` must contain only picklable,
    content-hashable values: primitives, tuples/lists/dicts of them,
    bytes, enums, and dataclasses (the config objects).
    """

    #: Stable identity within the spec, e.g. ``"kv/qd64/4096"``; used in
    #: progress/error reporting, not in the cache key.
    label: str
    #: The cell function; called as ``fn(**kwargs)``.  Deliberately not
    #: canonicalizable: point_key hashes fn by module.qualname identity,
    #: never through exec/cache.canonical.
    fn: Callable[..., Any]  # simlint: disable=SIM011
    #: Complete inputs of the cell (hashed into the cache key).
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: Extra cache-key salt for seeded variants of otherwise-equal cells.
    seed: int = 0

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise ConfigurationError(
                f"sweep point {self.label!r}: fn must be callable, "
                f"got {type(self.fn).__name__}"
            )
        qualname = getattr(self.fn, "__qualname__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise ConfigurationError(
                f"sweep point {self.label!r}: fn must be module-level "
                f"(picklable by reference), got {qualname!r}"
            )

    def __call__(self) -> Any:
        """Compute the cell in the current process."""
        return self.fn(**dict(self.kwargs))


@dataclass(frozen=True)
class SweepSpec:
    """An ordered collection of independent points forming one sweep."""

    name: str
    points: Tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.points, tuple):
            # Accept any iterable at construction for ergonomics.
            object.__setattr__(self, "points", tuple(self.points))
        labels = [point.label for point in self.points]
        if len(set(labels)) != len(labels):
            dupes = sorted({x for x in labels if labels.count(x) > 1})
            raise ConfigurationError(
                f"sweep {self.name!r} has duplicate point labels: {dupes}"
            )

    def __len__(self) -> int:
        return len(self.points)
