"""Sweep-execution engine: fan independent experiment points out.

The paper's evaluation is a grid of *independent* experiment points
(value-size x queue-depth cells, fill-level sweeps, fault-rate sweeps);
each point builds its own simulator from scratch and shares nothing with
its neighbors.  This package turns that independence into wall-clock
speed and re-run economy:

* :mod:`repro.exec.spec` — :class:`SweepSpec`/:class:`SweepPoint`, the
  declarative form of the ad-hoc loops the figure experiments used to
  hand-roll;
* :mod:`repro.exec.cache` — an on-disk result cache keyed by a content
  hash of (cell function, arguments, seed, code-version salt), so
  re-running a figure only recomputes points whose inputs changed;
* :mod:`repro.exec.runner` — :class:`SweepRunner`, which executes the
  missing points inline (``workers=1``) or over a ``multiprocessing``
  pool, and always assembles results in *spec order* so parallel output
  is byte-identical to serial.
"""

from repro.exec.cache import ResultCache, code_version_salt, point_key
from repro.exec.runner import ExecReport, SweepRunner, execute_spec
from repro.exec.spec import SweepPoint, SweepSpec

__all__ = [
    "ExecReport",
    "ResultCache",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "code_version_salt",
    "execute_spec",
    "point_key",
]
