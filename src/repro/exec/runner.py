"""Process-pool sweep execution with deterministic assembly.

:class:`SweepRunner` executes a :class:`~repro.exec.spec.SweepSpec` in
three steps:

1. **Probe the cache** — every point's content hash is looked up first;
   hits skip computation entirely.
2. **Compute the misses** — inline and in spec order at ``workers=1``,
   or fanned out over a ``multiprocessing`` pool otherwise.  Each worker
   process runs the cell function from scratch (its own simulator, its
   own RNGs), which is exactly the isolation the experiments already
   guarantee — the pool only removes the serialization between them.
3. **Assemble in spec order** — results are placed by point index,
   never completion order, so the assembled list (and everything
   downstream: tables, figures, EXPERIMENTS.md) is byte-identical no
   matter the worker count.  Simulated clocks make point results
   independent of host timing, and pickling round-trips floats exactly,
   so the equality is literal, not approximate.

The wall clock appears in this module on purpose: the runner is host-
side orchestration (how long did the *host* take), never simulation
state.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.errors import ConfigurationError
from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache, code_version_salt, point_key
from repro.exec.spec import SweepPoint, SweepSpec


def _compute_point(fn: Any, kwargs: Dict[str, Any]) -> Any:
    """Worker entry: run one cell (module-level so pools can import it)."""
    return fn(**kwargs)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Cheapest available start method; results do not depend on it."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass(frozen=True)
class ExecReport:
    """What one :meth:`SweepRunner.run` call did."""

    spec_name: str
    points: int
    hits: int
    computed: int
    workers: int
    #: Host wall-clock seconds for the whole run() call.
    elapsed_s: float

    @property
    def hit_rate(self) -> float:
        """Cache hits over total points (0.0 when the spec was empty)."""
        if self.points == 0:
            return 0.0
        return self.hits / self.points

    def format(self) -> str:
        return (
            f"[exec] {self.spec_name}: {self.points} points, "
            f"{self.hits} cached, {self.computed} computed, "
            f"workers={self.workers}, {self.elapsed_s:.2f}s host "
            f"({self.hit_rate * 100.0:.1f}% hit rate)"
        )


class SweepRunner:
    """Executes sweep specs with optional parallelism and caching.

    ``cache=True`` (the default) opens :data:`DEFAULT_CACHE_DIR`;
    ``cache=False`` disables caching; passing a :class:`ResultCache`
    uses it directly (tests point this at a temp dir).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Union[bool, ResultCache] = True,
        cache_dir: Union[str, "os.PathLike[str]", None] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        elif cache:
            self.cache = ResultCache(cache_dir or DEFAULT_CACHE_DIR)
        else:
            self.cache = None
        #: One entry per run() call, oldest first.
        self.reports: List[ExecReport] = []

    @property
    def last_report(self) -> Optional[ExecReport]:
        return self.reports[-1] if self.reports else None

    def run(self, spec: SweepSpec) -> List[Any]:
        """Execute ``spec``; returns results in spec order."""
        started = time.perf_counter()  # simlint: disable=SIM001
        sentinel = object()
        results: List[Any] = [sentinel] * len(spec.points)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(spec.points)

        if self.cache is not None:
            salt = code_version_salt()
            for index, point in enumerate(spec.points):
                keys[index] = point_key(point, salt)
                hit, value = self.cache.get(keys[index])
                if hit:
                    results[index] = value
                else:
                    pending.append(index)
        else:
            pending = list(range(len(spec.points)))

        hits = len(spec.points) - len(pending)
        self._compute(spec, pending, results)
        if self.cache is not None:
            for index in pending:
                key = keys[index]
                assert key is not None
                self.cache.put(key, results[index])

        elapsed = time.perf_counter() - started  # simlint: disable=SIM001
        self.reports.append(
            ExecReport(
                spec_name=spec.name,
                points=len(spec.points),
                hits=hits,
                computed=len(pending),
                workers=self.workers,
                elapsed_s=elapsed,
            )
        )
        return results

    def _compute(
        self, spec: SweepSpec, pending: List[int], results: List[Any]
    ) -> None:
        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            for index in pending:
                results[index] = spec.points[index]()
            return
        point_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=point_workers, mp_context=_pool_context()
        ) as pool:
            futures = {
                index: pool.submit(
                    _compute_point,
                    spec.points[index].fn,
                    dict(spec.points[index].kwargs),
                )
                for index in pending
            }
            # Collect by point index — completion order never matters.
            for index, future in futures.items():
                results[index] = future.result()


def execute_spec(
    spec: SweepSpec, runner: Optional[SweepRunner] = None
) -> List[Any]:
    """Run ``spec`` through ``runner``, or inline when no runner is given.

    The inline path is the historical behavior of every experiment loop
    (serial, uncached, in-process); experiments call this so a plain
    ``fig4_value_size_concurrency()`` works exactly as before while
    ``runner=SweepRunner(workers=4)`` fans the same points out.
    """
    if runner is None:
        return [point() for point in spec.points]
    return runner.run(spec)


__all__ = [
    "ExecReport",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "execute_spec",
]
