"""Timing model for NAND flash operations.

Latencies are calibrated so the *block* firmware personality lands near the
PM983 datasheet relationships the paper relies on (Sec. IV): ~80-100 us 4 KiB
random reads, tens-of-us buffered writes, sequential 4 KiB reads/writes at
roughly 0.8x / 0.6x the latency of random ones, and near-constant latency
as occupancy grows.  The KV personality uses the *same* flash timing — the
paper's same-hardware methodology — and differs only in FTL policy costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FlashTiming:
    """NAND and channel timing parameters (times in microseconds).

    Attributes
    ----------
    read_us:
        Array sense time for one page read (tR).  TLC-class value.
    program_us:
        Array program time for one page (tPROG).
    erase_us:
        Block erase time (tBERS).
    channel_bytes_per_us:
        Channel transfer rate; 800 bytes/us = 800 MB/s ONFI-class bus.
    command_overhead_us:
        Fixed channel occupancy per flash command (command/address cycles).
    """

    read_us: float = 60.0
    program_us: float = 700.0
    erase_us: float = 3000.0
    channel_bytes_per_us: float = 800.0
    command_overhead_us: float = 1.5

    #: Memo table for :meth:`transfer_us`.  Workloads issue a handful of
    #: distinct transfer sizes (the value size, the page size, index
    #: pages), so per-page timing arithmetic on the hot path collapses to
    #: one dict probe.  Values are computed by the same expression as the
    #: uncached path, so the table is exact, not approximate.
    _transfer_memo: Dict[int, float] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        for field_name in (
            "read_us",
            "program_us",
            "erase_us",
            "channel_bytes_per_us",
            "command_overhead_us",
        ):
            value = getattr(self, field_name)
            if value <= 0 and field_name != "command_overhead_us":
                raise ConfigurationError(
                    f"timing field {field_name} must be positive, got {value}"
                )
        if self.command_overhead_us < 0:
            raise ConfigurationError("command_overhead_us must be >= 0")

    def transfer_us(self, nbytes: int) -> float:
        """Channel occupancy to move ``nbytes`` plus command overhead."""
        memo = self._transfer_memo
        cached = memo.get(nbytes)
        if cached is not None:
            return cached
        if nbytes < 0:
            raise ConfigurationError(f"transfer size must be >= 0, got {nbytes}")
        value = self.command_overhead_us + nbytes / self.channel_bytes_per_us
        memo[nbytes] = value
        return value

    def page_read_service_us(self, geometry_page_bytes: int, nbytes: int) -> float:
        """Un-contended service time for reading ``nbytes`` out of a page.

        The array always senses the whole page (tR); only the requested
        bytes cross the channel.  Useful for back-of-envelope checks; the
        timed array composes the same two phases with contention.
        """
        nbytes = min(nbytes, geometry_page_bytes)
        return self.read_us + self.transfer_us(nbytes)
