"""The timed NAND flash array shared by both firmware personalities.

:class:`FlashArray` combines three concerns:

* **Timing** — reads, programs and erases are simulation processes that
  contend for per-die and per-channel resources, so parallelism (and the
  lack of it) emerges from the geometry rather than from tuned constants.
* **State** — per-block lifecycle (FREE -> OPEN -> CLOSED -> FREE after
  erase), the next programmable page, and the count of still-valid bytes
  per block.  Valid-byte accounting is what garbage collection policies
  read when choosing victims.
* **Fast priming** — untimed state mutation (:meth:`prime_program`) used by
  experiment setup to pre-fill a device without simulating each I/O, which
  makes the paper's "fill 80% of a 3.84 TB drive" setups feasible.

The array does not store user data bytes — the simulator tracks sizes and
placement, not content.  Content correctness is the FTLs' job and is
verified at their level through mapping invariants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Optional

from repro.errors import (
    AddressError,
    EraseFailError,
    ProgramFailError,
    SimulationError,
)
from repro.faults.model import FaultInjector, READ_OK, ReadResult
from repro.flash.geometry import Geometry
from repro.flash.timing import FlashTiming
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource

if TYPE_CHECKING:
    # Both live above this layer; imported for annotations only.
    from repro.ftl.core import DeviceStats
    from repro.trace.tracer import Tracer


class BlockState(enum.Enum):
    """Lifecycle of an erase unit."""

    FREE = "free"
    OPEN = "open"
    CLOSED = "closed"


@dataclass
class BlockInfo:
    """Mutable bookkeeping for one erase unit."""

    state: BlockState = BlockState.FREE
    next_page: int = 0
    valid_bytes: int = 0
    erase_count: int = 0


@dataclass
class FlashCounters:
    """Cumulative operation counters (the simulator's S.M.A.R.T. log)."""

    page_reads: int = 0
    page_programs: int = 0
    block_erases: int = 0
    bytes_read: int = 0
    bytes_programmed: int = 0
    primed_pages: int = 0

    def snapshot(self) -> "FlashCounters":
        """Return a copy, for before/after deltas in experiments."""
        return FlashCounters(
            page_reads=self.page_reads,
            page_programs=self.page_programs,
            block_erases=self.block_erases,
            bytes_read=self.bytes_read,
            bytes_programmed=self.bytes_programmed,
            primed_pages=self.primed_pages,
        )


class FlashArray:
    """Timed, stateful NAND array.

    All timed entry points are generator methods intended for ``yield
    from`` inside simulation processes.  Timing composition:

    * ``read``: die busy for tR, then channel busy for the data transfer.
    * ``program``: channel busy for the data transfer, then die busy for
      tPROG.  (Cache-program pipelining across planes is approximated by
      the per-die resource: two planes behind one die still serialize,
      matching the conservative end of real devices.)
    * ``erase``: die busy for tBERS; negligible channel traffic.
    """

    def __init__(
        self,
        env: Environment,
        geometry: Geometry,
        timing: FlashTiming,
        stats: Optional["DeviceStats"] = None,
        tracer: Optional["Tracer"] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.env = env
        self.geometry = geometry
        self.timing = timing
        self.counters = FlashCounters()
        #: Optional device-level DeviceStats sink mirroring timed flash ops.
        self._stats = stats
        #: Optional span tracer; timed ops emit die/channel timeline spans.
        self._tracer = tracer
        #: Optional fault injector; ``None`` models perfect flash.
        self.faults = faults
        self._dies: List[Resource] = [
            Resource(env, capacity=1, name=f"die{i}")
            for i in range(geometry.total_dies)
        ]
        self._channels: List[Resource] = [
            Resource(env, capacity=1, name=f"ch{i}") for i in range(geometry.channels)
        ]
        self.blocks: List[BlockInfo] = [
            BlockInfo() for _ in range(geometry.total_blocks)
        ]
        # Per-block lookup tables, precomputed once: the die/channel of a
        # block is pure arithmetic on the geometry, and resolving it per
        # timed op (three times per read, counting the trace track name)
        # showed up in profiles.  Index layout matches Geometry.die_of_block.
        total_dies = geometry.total_dies
        channels = geometry.channels
        self._die_index: List[int] = [
            block % total_dies for block in range(geometry.total_blocks)
        ]
        self._chan_index: List[int] = [
            (block % total_dies) % channels for block in range(geometry.total_blocks)
        ]
        self._die_res: List[Resource] = [
            self._dies[die] for die in self._die_index
        ]
        self._chan_res: List[Resource] = [
            self._channels[chan] for chan in self._chan_index
        ]
        self._die_track: List[str] = [f"die{die}" for die in self._die_index]
        self._chan_track: List[str] = [f"ch{chan}" for chan in self._chan_index]

    def _tracing(self) -> Optional["Tracer"]:
        """The tracer when flash spans are wanted, else ``None``.

        Timeline spans are recorded immediately after each resource serve
        with the known service duration, so they cover busy time only —
        queue waits show up as gaps on the die/channel tracks.
        """
        tracer = self._tracer
        if tracer is not None and tracer.wants("flash"):
            return tracer
        return None

    # -- resource lookup ---------------------------------------------------

    def die_resource(self, block_index: int) -> Resource:
        """Die resource owning ``block_index``."""
        self.geometry.check_block(block_index)
        return self._die_res[block_index]

    def channel_resource(self, block_index: int) -> Resource:
        """Channel resource serving ``block_index``."""
        self.geometry.check_block(block_index)
        return self._chan_res[block_index]

    def die_utilization(self) -> float:
        """Mean busy fraction across all dies since construction."""
        fractions = [die.busy_fraction() for die in self._dies]
        return sum(fractions) / len(fractions)

    # -- state transitions (untimed, used by timed ops and by priming) -----

    def open_block(self, block_index: int) -> None:
        """Transition a FREE block to OPEN so pages can be programmed."""
        info = self._info(block_index)
        if info.state is not BlockState.FREE:
            raise SimulationError(
                f"block {block_index} cannot be opened from state {info.state}"
            )
        info.state = BlockState.OPEN
        info.next_page = 0
        info.valid_bytes = 0

    def _info(self, block_index: int) -> BlockInfo:
        blocks = self.blocks
        if not 0 <= block_index < len(blocks):
            # Delegate for the canonical out-of-range message.
            self.geometry.check_block(block_index)
        return blocks[block_index]

    def _commit_program(self, block_index: int, valid_bytes: int) -> int:
        """Advance the block's write point; returns the programmed page index."""
        info = self._info(block_index)
        geometry = self.geometry
        pages_per_block = geometry.pages_per_block
        if info.state is not BlockState.OPEN:
            raise SimulationError(
                f"program to block {block_index} in state {info.state}"
            )
        page_index = info.next_page
        if page_index >= pages_per_block:
            raise SimulationError(f"block {block_index} has no free pages")
        if not 0 <= valid_bytes <= geometry.page_bytes:
            raise AddressError(
                f"valid_bytes {valid_bytes} outside page of "
                f"{geometry.page_bytes} bytes"
            )
        info.next_page = page_index + 1
        info.valid_bytes += valid_bytes
        if page_index + 1 == pages_per_block:
            info.state = BlockState.CLOSED
        return page_index

    def invalidate(self, block_index: int, nbytes: int) -> None:
        """Mark ``nbytes`` of a block's contents dead (overwritten/deleted)."""
        info = self._info(block_index)
        if nbytes < 0:
            raise AddressError(f"cannot invalidate negative bytes ({nbytes})")
        if nbytes > info.valid_bytes:
            raise SimulationError(
                f"invalidate {nbytes}B exceeds valid {info.valid_bytes}B in "
                f"block {block_index}"
            )
        info.valid_bytes -= nbytes

    def prime_program(self, block_index: int, valid_bytes: int) -> int:
        """Untimed page program for experiment setup (fast fill).

        Identical state effect to the timed :meth:`program`, with the
        flash-op counters recording it as a primed page instead.
        """
        page_index = self._commit_program(block_index, valid_bytes)
        self.counters.primed_pages += 1
        return page_index

    def prime_program_run(
        self, block_index: int, n_pages: int, valid_bytes_per_page: int
    ) -> int:
        """Untimed program of ``n_pages`` consecutive pages of one block.

        State-identical to ``n_pages`` calls of :meth:`prime_program`
        with the same per-page payload; returns the first programmed page
        index.  Bulk priming batches whole-page runs through here so the
        per-page commit arithmetic runs once per run, not once per page.
        """
        info = self._info(block_index)
        if info.state is not BlockState.OPEN:
            raise SimulationError(
                f"program to block {block_index} in state {info.state}"
            )
        pages_per_block = self.geometry.pages_per_block
        start_page = info.next_page
        if n_pages < 1 or start_page + n_pages > pages_per_block:
            raise SimulationError(
                f"run of {n_pages} pages from page {start_page} does not fit "
                f"block {block_index}"
            )
        if not 0 <= valid_bytes_per_page <= self.geometry.page_bytes:
            raise AddressError(
                f"valid_bytes {valid_bytes_per_page} outside page of "
                f"{self.geometry.page_bytes} bytes"
            )
        info.next_page = start_page + n_pages
        info.valid_bytes += n_pages * valid_bytes_per_page
        if info.next_page == pages_per_block:
            info.state = BlockState.CLOSED
        self.counters.primed_pages += n_pages
        return start_page

    def prime_erase(self, block_index: int) -> None:
        """Untimed erase for experiment setup."""
        info = self._info(block_index)
        info.state = BlockState.FREE
        info.next_page = 0
        info.valid_bytes = 0
        info.erase_count += 1

    # -- timed operations ----------------------------------------------------

    def read(
        self,
        block_index: int,
        page_index: int,
        nbytes: int,
        attempt: int = 0,
        fault_check: bool = True,
    ) -> Generator[Event, None, ReadResult]:
        """Read ``nbytes`` from a programmed page (timed).

        The die senses the full page; only ``nbytes`` cross the channel.
        Returns a :class:`~repro.faults.model.ReadResult`; with no fault
        injector (or ``fault_check=False``, used for regions the fault
        model deliberately excludes) every read comes back clean.
        ``attempt`` numbers the retry step — the recovering caller
        (:meth:`~repro.ftl.core.FtlCore.read_page`) re-issues with
        increasing attempts until the injector relents or retries run out.
        """
        info = self._info(block_index)
        self.geometry.check_page(block_index, page_index)
        if page_index >= info.next_page and info.state is not BlockState.CLOSED:
            raise SimulationError(
                f"read of unprogrammed page {page_index} in block {block_index}"
            )
        # The fault decision happens at issue time, before any timed wait,
        # so the injector's RNG is consumed in submission order and replays
        # are deterministic regardless of resource contention.
        good = True
        if fault_check and self.faults is not None:
            good = self.faults.read_attempt(
                block_index, page_index, info.erase_count, attempt
            )
        timing = self.timing
        stats = self._stats
        nbytes = min(nbytes, self.geometry.page_bytes)
        read_us = timing.read_us
        transfer_us = timing.transfer_us(nbytes)
        tracer = self._tracing()
        yield from self._die_res[block_index].serve(read_us)
        # Busy time is banked per serve, at the same instants spans are
        # recorded, so counter and trace agree even with ops in flight.
        if stats is not None:
            stats.flash_busy_us += read_us
        if tracer is not None:
            tracer.complete(
                self._die_track[block_index],
                "read", "flash", read_us,
                args={"block": block_index},
            )
        yield from self._chan_res[block_index].serve(transfer_us)
        if stats is not None:
            stats.flash_busy_us += transfer_us
        if tracer is not None:
            tracer.complete(
                self._chan_track[block_index],
                "read.xfer", "flash", transfer_us,
            )
        counters = self.counters
        counters.page_reads += 1
        counters.bytes_read += nbytes
        if stats is not None:
            stats.flash_reads += 1
        if good and attempt == 0:
            return READ_OK
        return ReadResult(ok=good, retries=attempt)

    def program(
        self, block_index: int, nbytes: int, valid_bytes: int
    ) -> Generator[Event, None, int]:
        """Program the next page of an OPEN block (timed).

        ``nbytes`` is the transfer size (normally the full page);
        ``valid_bytes`` is how much of the page holds live data for GC
        accounting.  Returns the programmed page index.

        Raises :class:`~repro.errors.ProgramFailError` when the fault
        injector fails the program's status check — after the transfer
        and tPROG have been consumed (a real failed program costs full
        time), with the block state unchanged so the FTL can close the
        block and reallocate elsewhere.
        """
        failed = False
        if self.faults is not None:
            info = self._info(block_index)
            failed = self.faults.program_fails(block_index, info.erase_count)
        timing = self.timing
        stats = self._stats
        nbytes = min(nbytes, self.geometry.page_bytes)
        program_us = timing.program_us
        transfer_us = timing.transfer_us(nbytes)
        tracer = self._tracing()
        yield from self._chan_res[block_index].serve(transfer_us)
        if stats is not None:
            stats.flash_busy_us += transfer_us
        if tracer is not None:
            tracer.complete(
                self._chan_track[block_index],
                "program.xfer", "flash", transfer_us,
            )
        yield from self._die_res[block_index].serve(program_us)
        if stats is not None:
            stats.flash_busy_us += program_us
        if tracer is not None:
            tracer.complete(
                self._die_track[block_index],
                "program", "flash", program_us,
                args={"block": block_index},
            )
        if failed:
            raise ProgramFailError(
                f"program failed in block {block_index}", block=block_index
            )
        page_index = self._commit_program(block_index, valid_bytes)
        counters = self.counters
        counters.page_programs += 1
        counters.bytes_programmed += nbytes
        if stats is not None:
            stats.flash_programs += 1
        return page_index

    def erase(self, block_index: int) -> Generator[Event, None, None]:
        """Erase a block (timed), returning it to the FREE state.

        Raises :class:`~repro.errors.EraseFailError` when the fault
        injector fails the erase — after tBERS has been consumed, with
        the block left CLOSED so the FTL retires it instead of reusing it.
        """
        info = self._info(block_index)
        if info.valid_bytes != 0:
            raise SimulationError(
                f"erase of block {block_index} with {info.valid_bytes} valid "
                "bytes; relocate live data first"
            )
        failed = False
        if self.faults is not None:
            failed = self.faults.erase_fails(block_index, info.erase_count)
        tracer = self._tracing()
        yield from self._die_res[block_index].serve(self.timing.erase_us)
        if self._stats is not None:
            self._stats.flash_busy_us += self.timing.erase_us
        if tracer is not None:
            tracer.complete(
                self._die_track[block_index],
                "erase", "flash", self.timing.erase_us,
                args={"block": block_index},
            )
        if failed:
            info.state = BlockState.CLOSED
            raise EraseFailError(
                f"erase failed in block {block_index}", block=block_index
            )
        info.state = BlockState.FREE
        info.next_page = 0
        info.erase_count += 1
        self.counters.block_erases += 1
        if self._stats is not None:
            self._stats.flash_erases += 1

    def close_defective(self, block_index: int) -> None:
        """Force an OPEN block CLOSED after a program failure (untimed).

        Closing abandons the block's remaining free pages; allocation
        streams notice the externally-closed block and refill the slot,
        which is exactly the reallocation path program-fail recovery
        needs.  Already-CLOSED blocks are accepted (a program can fail on
        the last page of a block another writer just filled).
        """
        info = self._info(block_index)
        if info.state is BlockState.FREE:
            raise SimulationError(
                f"block {block_index} cannot be defect-closed while FREE"
            )
        info.state = BlockState.CLOSED

    # -- aggregate views -----------------------------------------------------

    def free_blocks(self) -> int:
        """Number of blocks currently FREE."""
        return sum(1 for info in self.blocks if info.state is BlockState.FREE)

    def total_valid_bytes(self) -> int:
        """Live bytes across the whole array."""
        return sum(info.valid_bytes for info in self.blocks)

    def write_amplification(self) -> float:
        """Programmed bytes / host-attributable bytes is FTL-level; here we
        expose programmed-page totals for the FTLs to normalize."""
        return float(self.counters.page_programs)
