"""NAND flash substrate: geometry, timing, and the timed array."""

from repro.flash.geometry import Geometry, PageAddress, scaled_pm983, tiny_geometry
from repro.flash.nand import BlockInfo, BlockState, FlashArray, FlashCounters
from repro.flash.timing import FlashTiming

__all__ = [
    "BlockInfo",
    "BlockState",
    "FlashArray",
    "FlashCounters",
    "FlashTiming",
    "Geometry",
    "PageAddress",
    "scaled_pm983",
    "tiny_geometry",
]
