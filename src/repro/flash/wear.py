"""Wear-leveling statistics over the flash array.

Not a paper figure, but a standard device-health view any SSD study keeps
an eye on: per-block erase counts, their spread, and a wear-leveling
quality score.  The GC victim policies in :mod:`repro.ftl.victim` trade
write amplification against wear spread; these statistics make that trade
visible to the ablation bench and to tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.flash.nand import FlashArray


@dataclass(frozen=True)
class WearReport:
    """Summary of erase-count dispersion across blocks."""

    blocks: int
    total_erases: int
    min_erases: int
    max_erases: int
    mean_erases: float
    stddev_erases: float

    @property
    def spread(self) -> int:
        """Max minus min erase count (0 = perfectly level)."""
        return self.max_erases - self.min_erases

    @property
    def evenness(self) -> float:
        """1 / (1 + coefficient of variation): 1.0 is perfectly even."""
        if self.mean_erases == 0.0:
            return 1.0
        return 1.0 / (1.0 + self.stddev_erases / self.mean_erases)


def wear_report(
    array: FlashArray, exclude: Optional[Set[int]] = None
) -> WearReport:
    """Compute wear statistics, optionally excluding reserved blocks."""
    exclude = exclude or set()
    counts: List[int] = [
        info.erase_count
        for index, info in enumerate(array.blocks)
        if index not in exclude
    ]
    if not counts:
        raise ValueError("no blocks left after exclusions")
    total = sum(counts)
    mean = total / len(counts)
    variance = sum((count - mean) ** 2 for count in counts) / len(counts)
    return WearReport(
        blocks=len(counts),
        total_erases=total,
        min_erases=min(counts),
        max_erases=max(counts),
        mean_erases=mean,
        stddev_erases=math.sqrt(variance),
    )


def remaining_life_fraction(
    array: FlashArray,
    rated_cycles: int = 3000,
    exclude: Optional[Set[int]] = None,
) -> float:
    """Fraction of rated P/E cycles left on the most-worn block.

    Enterprise TLC like the paper's PM983 is rated around 1-3k cycles;
    the device dies with its most-worn block.
    """
    if rated_cycles < 1:
        raise ValueError(f"rated cycles must be >= 1, got {rated_cycles}")
    report = wear_report(array, exclude)
    return max(0.0, 1.0 - report.max_erases / rated_cycles)
