"""Physical geometry of the simulated NAND flash array.

The geometry mirrors the hierarchy of a real enterprise drive such as the
Samsung PM983 the paper measures: *channels* connect the controller to
*dies*; each die holds *planes*; planes hold *blocks* (the erase unit); and
blocks hold *pages* (the program unit).

The paper's experiments run on a 3.84 TB device.  Simulating that capacity
page-by-page is neither necessary nor useful — every reported effect is a
ratio at matched relative occupancy — so the default geometry is a scaled
device (~8 GiB) with the same page size (32 KiB, the paper's inferred page
size for the PM983) and the same parallelism structure.  Experiments that
need other scales construct their own geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AddressError, ConfigurationError
from repro.units import GIB, KIB


@dataclass(frozen=True)
class PageAddress:
    """Fully qualified physical page address within a geometry."""

    channel: int
    die: int
    plane: int
    block: int
    page: int


@dataclass(frozen=True)
class Geometry:
    """Immutable description of the flash array's shape.

    Attributes
    ----------
    channels:
        Independent buses between controller and flash packages.
    dies_per_channel:
        Dies sharing each channel; dies operate concurrently but share the
        channel for data transfer.
    planes_per_die:
        Planes per die; modeled as extra blocks behind the same die-busy
        resource (multi-plane commands are folded into the die timing).
    blocks_per_plane:
        Erase units per plane.
    pages_per_block:
        Program units per block.
    page_bytes:
        Size of one flash page (32 KiB on the paper's PM983 hypothesis).
    """

    channels: int = 8
    dies_per_channel: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 64
    pages_per_block: int = 128
    page_bytes: int = 32 * KIB

    # Derived quantities, precomputed once at construction: these sit on
    # per-page hot paths (bounds checks, die/channel lookup), where the
    # former @property arithmetic dominated profiles.  Excluded from
    # repr/compare so Geometry equality and hashing still mean "same
    # configured shape".
    total_dies: int = field(init=False, repr=False, compare=False, default=0)
    blocks_per_die: int = field(init=False, repr=False, compare=False, default=0)
    total_blocks: int = field(init=False, repr=False, compare=False, default=0)
    total_pages: int = field(init=False, repr=False, compare=False, default=0)
    block_bytes: int = field(init=False, repr=False, compare=False, default=0)
    capacity_bytes: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        for field_name in (
            "channels",
            "dies_per_channel",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_bytes",
        ):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"geometry field {field_name} must be a positive int, "
                    f"got {value!r}"
                )
        write = object.__setattr__  # frozen dataclass
        write(self, "total_dies", self.channels * self.dies_per_channel)
        write(self, "blocks_per_die", self.planes_per_die * self.blocks_per_plane)
        write(self, "total_blocks", self.total_dies * self.blocks_per_die)
        write(self, "total_pages", self.total_blocks * self.pages_per_block)
        write(self, "block_bytes", self.pages_per_block * self.page_bytes)
        write(self, "capacity_bytes", self.total_pages * self.page_bytes)

    # -- flat block indexing ----------------------------------------------

    def die_of_block(self, block_index: int) -> int:
        """Die (0..total_dies-1) that owns flat block ``block_index``.

        Blocks are numbered so that consecutive indices rotate across dies
        first (``block % total_dies``), which makes naive sequential block
        allocation stripe across all dies — the layout real FTLs use to
        maximize program parallelism.
        """
        self.check_block(block_index)
        return block_index % self.total_dies

    def channel_of_die(self, die_index: int) -> int:
        """Channel (0..channels-1) that die ``die_index`` hangs off."""
        if not 0 <= die_index < self.total_dies:
            raise AddressError(
                f"die index {die_index} out of range [0, {self.total_dies})"
            )
        return die_index % self.channels

    def channel_of_block(self, block_index: int) -> int:
        """Channel serving flat block ``block_index``."""
        return self.channel_of_die(self.die_of_block(block_index))

    def check_block(self, block_index: int) -> None:
        """Raise :class:`AddressError` if ``block_index`` is out of range."""
        if not 0 <= block_index < self.total_blocks:
            raise AddressError(
                f"block index {block_index} out of range [0, {self.total_blocks})"
            )

    def check_page(self, block_index: int, page_index: int) -> None:
        """Raise :class:`AddressError` for an invalid (block, page) pair."""
        self.check_block(block_index)
        if not 0 <= page_index < self.pages_per_block:
            raise AddressError(
                f"page index {page_index} out of range [0, {self.pages_per_block})"
            )

    def describe(self) -> str:
        """One-line human-readable summary of the array shape."""
        return (
            f"{self.channels}ch x {self.dies_per_channel}die x "
            f"{self.planes_per_die}pl x {self.blocks_per_plane}blk x "
            f"{self.pages_per_block}pg x {self.page_bytes}B "
            f"= {self.capacity_bytes / GIB:.2f} GiB raw"
        )


def scaled_pm983(scale_divisor: int = 500) -> Geometry:
    """A PM983-3.84TB-shaped geometry scaled down by ``scale_divisor``.

    The real drive is modeled as 8 channels x 8 dies x 2 planes x 1024
    blocks x 256 pages x 32 KiB ~= 4 TiB raw.  Scaling reduces only the
    number of blocks per plane, preserving page size and parallelism so
    that latency-path behaviour is unchanged while fills remain feasible.
    """
    if scale_divisor < 1:
        raise ConfigurationError(f"scale divisor must be >= 1, got {scale_divisor}")
    full_blocks_per_plane = 1024
    pages_per_block = 256
    blocks = max(4, full_blocks_per_plane // max(1, scale_divisor // 4))
    return Geometry(
        channels=8,
        dies_per_channel=8,
        planes_per_die=2,
        blocks_per_plane=blocks,
        pages_per_block=pages_per_block,
        page_bytes=32 * KIB,
    )


def tiny_geometry() -> Geometry:
    """A very small array for fast unit tests (a few MiB)."""
    return Geometry(
        channels=2,
        dies_per_channel=2,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=16,
        page_bytes=4 * KIB,
    )
