#!/usr/bin/env python3
"""GC pressure study: watch a nearly-full KV-SSD collapse under updates.

Reproduces the paper's Fig. 6 mechanism interactively: fill most of a
KV-SSD, then stream random updates and watch bandwidth, foreground GC
activity, and write amplification evolve — the behaviour behind the
paper's advice to "avoid KV-SSD for write-heavy workloads ... if the
drive capacity is almost filled".

Run:  python examples/gc_pressure_study.py
"""

from repro.core import build_kv_rig, lab_geometry
from repro.kvbench import (
    Pattern,
    WorkloadSpec,
    execute_workload,
    format_table,
    generate_operations,
    sparkline,
)
from repro.kvftl.blob import blobs_per_page
from repro.kvftl.population import KeyScheme
from repro.units import KIB

VALUE_BYTES = 4 * KIB
FILL_FRACTION = 0.8
SCHEME = KeyScheme(prefix=b"fill", digits=12)


def main() -> None:
    rig = build_kv_rig(lab_geometry(4))  # small device -> quick collapse
    device = rig.device

    per_page = blobs_per_page(
        SCHEME.key_bytes, VALUE_BYTES, device.array.geometry.page_bytes,
        device.config,
    )
    fill_blocks = device.free_block_count() - 32
    fill_kvps = int(
        fill_blocks
        * device.array.geometry.pages_per_block
        * per_page
        * FILL_FRACTION
    )
    device.fast_fill(fill_kvps, VALUE_BYTES, SCHEME)
    print(f"filled {fill_kvps:,} pairs "
          f"({device.occupancy_fraction():.0%} of user capacity); "
          f"free blocks: {device.free_block_count()}")

    spec = WorkloadSpec(
        n_ops=int(fill_kvps * 0.6),
        op="update",
        pattern=Pattern.UNIFORM,
        population=fill_kvps,
        key_scheme=SCHEME,
        value_bytes=VALUE_BYTES,
        seed=13,
    )
    before = device.counters.snapshot()
    run = execute_workload(
        rig.env, rig.adapter, generate_operations(spec), queue_depth=16,
        bandwidth_window_us=100_000.0, name="gc-study",
    )
    delta = device.counters.delta(before)

    series = run.bandwidth.series_mib_per_sec()
    print("\nupdate-phase bandwidth over time (MiB/s):")
    print(f"  {sparkline(series)}")
    print(f"  head {series[0]:.0f} -> trough "
          f"{min(s for s in series if s > 0):.0f} MiB/s")

    print("\ndevice counters for the update phase:")
    print(format_table(
        ["counter", "value"],
        [
            ["updates completed", run.completed_ops],
            ["GC runs", delta.gc_runs],
            ["foreground GC runs", delta.foreground_gc_runs],
            ["blocks erased", delta.gc_erased_blocks],
            ["GC-relocated MiB", delta.gc_relocated_bytes / (1024 * 1024)],
            ["write amplification", delta.write_amplification()],
        ],
    ))
    print("\npaper Sec. V: bursty update workloads on a nearly-full KV-SSD "
          "stall behind foreground GC; leave headroom or trim cold pairs.")


if __name__ == "__main__":
    main()
