#!/usr/bin/env python3
"""YCSB core workloads on KV-SSD vs RocksDB — the paper's future work.

The paper excluded YCSB only because no engine interfaced it with the
KV-SSD at the time, and its conclusion names YCSB exploration as future
work.  Here the simulated stacks play all six core workloads directly.

Watch workload E: a hash-indexed device has no ordered iteration (only
4-byte-prefix buckets), so scans emulate ordered ranges with point reads
— the LSM tree's one decisive win, invisible in the paper's figure set.

Run:  python examples/ycsb_comparison.py
"""

from repro.core import build_kv_rig, build_lsm_rig, lab_geometry
from repro.kvbench import YCSBDriver, YCSBSpec, execute_workload, format_table
from repro.kvbench.ycsb import generate_ycsb
from repro.kvftl.population import KeyScheme

POPULATION = 5000
N_OPS = 1200
WORKLOADS = ("A", "B", "C", "D", "E", "F")
SCHEME = KeyScheme(prefix=b"user", digits=12)


def run_kv(spec):
    rig = build_kv_rig(lab_geometry(8))
    rig.device.fast_fill(spec.population, spec.value_bytes, spec.key_scheme)
    driver = YCSBDriver(rig.adapter, spec)
    result = execute_workload(
        rig.env, driver, generate_ycsb(spec), queue_depth=8,
        name=f"ycsb{spec.workload}.kv",
    )
    return result.latency.mean()


def run_lsm(spec):
    rig = build_lsm_rig(lab_geometry(8))
    entries = {
        spec.key_scheme.key_for(i): spec.value_bytes
        for i in range(spec.population)
    }
    rig.store.prime_fill(entries, level=3)
    driver = YCSBDriver(rig.adapter, spec)
    result = execute_workload(
        rig.env, driver, generate_ycsb(spec), queue_depth=8,
        name=f"ycsb{spec.workload}.lsm",
    )
    return result.latency.mean()


def main() -> None:
    rows = []
    for workload in WORKLOADS:
        spec = YCSBSpec(
            workload=workload,
            n_ops=N_OPS,
            population=POPULATION,
            key_scheme=SCHEME,
            value_bytes=1000,
            scan_length=20,
        )
        kv_latency = run_kv(spec)
        lsm_latency = run_lsm(spec)
        rows.append([
            workload, kv_latency, lsm_latency, kv_latency / lsm_latency,
        ])

    print(f"YCSB core workloads, {POPULATION:,} x 1 KB records, "
          f"{N_OPS} ops each, QD8\n")
    print(format_table(
        ["workload", "KV-SSD us", "RocksDB us", "KV/RocksDB"], rows
    ))
    print("\nA=50/50 rw  B=95/5  C=read-only  D=read-latest  "
          "E=scans  F=read-modify-write")
    print("expected shape: KV-SSD competitive on update-heavy point "
          "workloads (A, F), behind on read-heavy ones (B, C, D — the "
          "paper's Fig. 2c), and far behind on scans (E) where the hash "
          "index has no order to exploit.")


if __name__ == "__main__":
    main()
