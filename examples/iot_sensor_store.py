#!/usr/bin/env python3
"""IoT sensor store: the paper's motivating embedded scenario.

The introduction motivates KV-SSDs with resource-limited embedded systems
(automotive, smart home, IoT) that run embedded KV stores over block
storage and pay redundant mapping overheads in CPU and memory.

This example plays a sensor-logging workload — small telemetry records,
insert-heavy with periodic reads — against two stacks:

* KV-SSD through the SNIA KVS API (the paper's proposal), and
* an LSM-tree store on ext4 on a block SSD (the incumbent),

then prints the trade the paper's conclusion describes: the KV-SSD frees
the small CPU (RQ1's ~13x) and speeds up ingestion, but pays space
amplification for tiny records (Fig. 7's caveat).

Run:  python examples/iot_sensor_store.py
"""

from repro.core import build_kv_rig, build_lsm_rig, lab_geometry
from repro.hostkv.lsm.store import LSMConfig
from repro.kvbench import (
    Pattern,
    WorkloadSpec,
    execute_workload,
    format_table,
    generate_operations,
)
from repro.kvftl.population import KeyScheme
from repro.units import KIB, MIB

#: Telemetry record: ~140 B payload (the Facebook-range sizes the paper
#: cites: real KV deployments average 57-154 B).
SENSOR_VALUE_BYTES = 140
N_READINGS = 12000
#: Keys like b"sens-000000000042" (16 B, the paper's key size).
SENSOR_SCHEME = KeyScheme(prefix=b"sens", digits=12)


def _drain(rig):
    target = rig.store if hasattr(rig, "store") else rig.device
    rig.env.run_until_complete(rig.env.process(target.drain()))


def run_stack(name, rig, adapter):
    ingest = WorkloadSpec(
        n_ops=N_READINGS,
        op="insert",
        pattern=Pattern.SEQUENTIAL,  # time-ordered sensor readings
        key_scheme=SENSOR_SCHEME,
        value_bytes=SENSOR_VALUE_BYTES,
        seed=5,
    )
    ingest_run = execute_workload(
        rig.env, adapter, generate_operations(ingest), queue_depth=4,
        name=f"{name}.ingest",
    )
    _drain(rig)
    lookups = WorkloadSpec(
        n_ops=N_READINGS // 4,
        op="read",
        pattern=Pattern.ZIPFIAN,  # dashboards poll recent/hot sensors
        population=N_READINGS,
        key_scheme=SENSOR_SCHEME,
        value_bytes=SENSOR_VALUE_BYTES,
        seed=7,
    )
    lookup_run = execute_workload(
        rig.env, adapter, generate_operations(lookups), queue_depth=4,
        name=f"{name}.lookup",
    )
    cpu_per_op = rig.cpu.total_busy_us / (
        ingest_run.completed_ops + lookup_run.completed_ops
    )
    return ingest_run, lookup_run, cpu_per_op


def main() -> None:
    geometry = lab_geometry(16)

    kv_rig = build_kv_rig(geometry)
    kv_ingest, kv_lookup, kv_cpu = run_stack("kv", kv_rig, kv_rig.adapter)

    # Embedded-class RocksDB configuration: a small memtable (the paper
    # reconfigured its host down to 6 GB DRAM for macro experiments).
    lsm_rig = build_lsm_rig(
        geometry,
        lsm_config=LSMConfig(
            memtable_bytes=256 * KIB,
            level_base_bytes=1 * MIB,
            sst_target_bytes=256 * KIB,
        ),
    )
    lsm_ingest, lsm_lookup, lsm_cpu = run_stack(
        "lsm", lsm_rig, lsm_rig.adapter
    )

    print("IoT sensor logging: %d x %dB readings + hot lookups\n"
          % (N_READINGS, SENSOR_VALUE_BYTES))
    print(format_table(
        ["metric", "KV-SSD", "RocksDB-on-block"],
        [
            ["ingest latency (us, mean)",
             kv_ingest.latency.mean(), lsm_ingest.latency.mean()],
            ["ingest p99 (us)",
             kv_ingest.latency.summary().p99,
             lsm_ingest.latency.summary().p99],
            ["lookup latency (us, mean)",
             kv_lookup.latency.mean(), lsm_lookup.latency.mean()],
            ["host CPU per op (us)", kv_cpu, lsm_cpu],
        ],
    ))

    kv_sa = kv_rig.device.space.amplification()
    print("\nthe trade (paper Sec. V): the KV-SSD frees the embedded CPU "
          f"({lsm_cpu / kv_cpu:.1f}x less host CPU; tail ingest "
          f"{lsm_ingest.latency.summary().p99 / kv_ingest.latency.summary().p99:.1f}x "
          f"calmer at p99), but pads each {SENSOR_VALUE_BYTES} B record to "
          f"1 KiB -> space amplification {kv_sa:.1f}x.")
    print("for write-heavy, tiny-record fleets, consider batching readings "
          "into >=1 KiB values before storing.")


if __name__ == "__main__":
    main()
