#!/usr/bin/env python3
"""Quickstart: store, retrieve, and inspect a simulated KV-SSD.

Builds a KV-SSD rig (device + NVMe driver + SNIA KVS API in one isolated
simulation), runs a handful of operations, and prints what the paper's
instrumentation would show: per-op latency, device counters, and space
accounting.

Run:  python examples/quickstart.py
"""

from repro.core import build_kv_rig
from repro.errors import KeyNotFoundError
from repro.units import KIB, pretty_size, pretty_time


def main() -> None:
    rig = build_kv_rig()
    env, api, device = rig.env, rig.api, rig.device

    print(f"device: {device.array.geometry.describe()}")
    print(f"user capacity: {pretty_size(device.user_capacity_bytes)}, "
          f"KVP limit: {device.max_kvps:,}\n")

    def session(env):
        # Store a few pairs of different sizes.
        for index, value_bytes in enumerate((100, 4 * KIB, 30 * KIB)):
            key = b"demo-key-%07d" % index
            started = env.now
            yield env.process(api.store(key, value_bytes))
            print(f"store {key.decode()} ({pretty_size(value_bytes)}): "
                  f"{pretty_time(env.now - started)}")

        # Retrieve one back.
        started = env.now
        value = yield env.process(api.retrieve(b"demo-key-0000001"))
        print(f"retrieve demo-key-0000001 -> {pretty_size(value)}: "
              f"{pretty_time(env.now - started)}")

        # Membership checks are cheap (Bloom filters answer negatives).
        started = env.now
        present = yield env.process(api.exist(b"demo-key-9999999"))
        print(f"exist(absent key) -> {present}: "
              f"{pretty_time(env.now - started)}")

        # Deletes and the not-found path.
        yield env.process(api.delete(b"demo-key-0000000"))
        try:
            yield env.process(api.retrieve(b"demo-key-0000000"))
        except KeyNotFoundError:
            print("retrieve after delete raises KeyNotFoundError (good)")

        yield env.process(device.drain())

    env.run_until_complete(env.process(session(env)))

    print(f"\nafter the session (t={pretty_time(env.now)}):")
    print(f"  live pairs:        {device.live_kvps}")
    print(f"  device bytes:      {pretty_size(device.occupied_bytes)}")
    print(f"  space amp:         {device.space.amplification():.2f}x "
          "(1 KiB minimum allocation pads the 100 B value)")
    print(f"  flash programs:    {device.array.counters.page_programs}")
    print(f"  host CPU consumed: {rig.cpu.total_busy_us:.1f} us")


if __name__ == "__main__":
    main()
