#!/usr/bin/env python3
"""Capacity planning with the analytical model (the paper's future work).

The paper's conclusion proposes "an analytical model of KV-SSD
performance that can help researchers generate more representative
workloads".  This example uses :class:`repro.core.model.KVSSDModel` the
way a deployment engineer would: given an object-size mix, predict space
amplification, the device's pair limit, and latency/throughput at low and
high occupancy — including the full-scale 3.84 TB drive the paper
measured, with no simulation required.

Run:  python examples/capacity_planning.py
"""

from repro.core import lab_geometry
from repro.core.model import KVSSDModel
from repro.kvbench import format_table
from repro.units import KIB

#: An object mix inspired by the paper's citations: mostly tiny records
#: (Facebook's 57-154 B averages) plus some page-sized and large blobs.
WORKLOAD_MIX = [
    ("session token", 16, 64, 0.30),
    ("telemetry record", 16, 140, 0.40),
    ("thumbnail", 16, 4 * KIB, 0.20),
    ("document", 16, 24 * KIB, 0.08),
    ("media segment", 16, 60 * KIB, 0.02),
]


def main() -> None:
    model = KVSSDModel(lab_geometry())

    print("per-object-class predictions (empty device):\n")
    rows = []
    for name, key_bytes, value_bytes, share in WORKLOAD_MIX:
        rows.append([
            name,
            f"{value_bytes}B",
            f"{share:.0%}",
            model.space_amplification(key_bytes, value_bytes),
            model.store_latency_us(key_bytes, value_bytes),
            model.retrieve_latency_us(key_bytes, value_bytes),
            model.store_throughput_kops(key_bytes, value_bytes),
        ])
    print(format_table(
        ["class", "value", "share", "space amp", "store us",
         "retrieve us", "store kops"],
        rows,
    ))

    # Blended space amplification for the mix.
    blended_app = sum(
        share * (key_bytes + value_bytes)
        for _n, key_bytes, value_bytes, share in WORKLOAD_MIX
    )
    blended_device = sum(
        share * (key_bytes + value_bytes)
        * model.space_amplification(key_bytes, value_bytes)
        for _n, key_bytes, value_bytes, share in WORKLOAD_MIX
    )
    print("\nblended space amplification of the mix: "
          f"{blended_device / blended_app:.2f}x")

    # Occupancy planning: how much latency headroom is left near the limit?
    limit = model.max_kvps()
    rows = []
    for fraction in (0.1, 0.5, 0.9):
        kvps = int(limit * fraction)
        rows.append([
            f"{fraction:.0%} of limit",
            f"{kvps:,}",
            model.resident_fraction(kvps),
            model.store_latency_us(16, 140, kvps),
            model.retrieve_latency_us(16, 140, kvps),
        ])
    print("\noccupancy headroom (140 B telemetry records):\n")
    print(format_table(
        ["fill", "pairs", "index resident", "store us", "retrieve us"],
        rows,
    ))

    full_scale = model.max_kvps_at_capacity(3.84e12)
    print("\nfull-scale extrapolation: a 3.84 TB drive tops out at "
          f"~{full_scale / 1e9:.2f} billion pairs (paper observed ~3.1 B).")
    print("plan for <=50% of the pair limit if the workload is tiny-record "
          "write-heavy: past the index-DRAM knee, store latency grows "
          f"{model.store_latency_us(16, 140, int(limit * 0.9)) / model.store_latency_us(16, 140, 0):.0f}x.")


if __name__ == "__main__":
    main()
