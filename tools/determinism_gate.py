#!/usr/bin/env python
"""CI determinism gate: the same seeded workload must replay identically.

Runs a small fig6-style traced workload (both personalities, foreground
GC active, span tracing on) twice from scratch under the sanitizer's
instrumentation (:mod:`repro.lint.sanitizer`) and compares the full
observable outcome byte-for-byte:

* the event-pop digest — every dequeued event's (fire time, type,
  process name), in fire order;
* the outcome fingerprint — per-personality run results and
  :class:`~repro.ftl.core.DeviceStats` deltas, latency percentiles,
  span counts per (process, category) track plus the drop counter.

Any divergence means nondeterminism crept into the simulator — a wall
clock, an unseeded RNG, or iteration over an unordered container — which
invalidates every paper-comparison number.  On failure the sanitizer's
localization names the FIRST divergent event (index, timestamp, type,
process name), and the unified fingerprint diff follows for context.
``repro sanitize`` layers PYTHONHASHSEED variation on top of this same
machinery; the gate stays single-interpreter so it runs everywhere fast.

Usage::

    PYTHONPATH=src python tools/determinism_gate.py [--n-ops N] [--fig FIG]
"""

from __future__ import annotations

import argparse
import difflib
import sys

from repro.lint.sanitizer import collect, localize


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fig", default="fig6",
                        help="trace scenario to replay (default: fig6)")
    parser.add_argument("--n-ops", type=int, default=400,
                        help="measured ops per personality (default: 400)")
    args = parser.parse_args(argv)

    target = f"fig:{args.fig}"
    first = collect(target, args.n_ops)
    second = collect(target, args.n_ops)
    divergence = localize(first, second)
    if divergence is None:
        lines = len(first.fingerprint.splitlines())
        print(f"determinism gate: OK — two {args.fig} runs of "
              f"{args.n_ops} ops produced identical outcomes "
              f"({first.total_events} events, {lines} fingerprint lines)")
        for trip in first.trips:
            print(f"determinism gate: note — tripwire: {trip}")
        return 0
    print("determinism gate: FAIL — seeded replay diverged:")
    print(f"  {divergence.render()}")
    diff = difflib.unified_diff(
        first.fingerprint.splitlines(keepends=True),
        second.fingerprint.splitlines(keepends=True),
        fromfile="run1", tofile="run2",
    )
    sys.stdout.writelines(diff)
    return 1


if __name__ == "__main__":
    sys.exit(main())
