#!/usr/bin/env python
"""CI determinism gate: the same seeded workload must replay identically.

Runs a small fig6-style traced workload (both personalities, foreground
GC active, span tracing on) twice from scratch and compares the full
observable outcome byte-for-byte:

* the per-personality :class:`~repro.ftl.core.DeviceStats` delta,
* run results (completed/failed ops, simulated start/finish times),
* latency percentiles,
* span counts per (process, category) track plus the drop counter.

Any divergence means nondeterminism crept into the simulator — a wall
clock, an unseeded RNG, or iteration over an unordered container — which
invalidates every paper-comparison number. Exits non-zero with a unified
diff of the two serialized outcomes.

Usage::

    PYTHONPATH=src python tools/determinism_gate.py [--n-ops N] [--fig FIG]
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
from dataclasses import asdict
from typing import Dict

from repro.trace.run import run_traced


def outcome_fingerprint(fig: str, n_ops: int) -> str:
    """One run's observable outcome as canonical (sorted, indented) JSON."""
    report = run_traced(fig=fig, n_ops=n_ops)
    document: Dict[str, object] = {"fig": fig, "n_ops": n_ops}

    runs = {}
    for personality, run in sorted(report.runs.items()):
        runs[personality] = {
            "completed_ops": run.completed_ops,
            "failed_ops": run.failed_ops,
            "started_us": run.started_us,
            "finished_us": run.finished_us,
            "device_stats": asdict(run.device_stats)
            if run.device_stats is not None else None,
            "latency": run.latency.summary().as_dict(),
        }
    document["runs"] = runs

    span_counts: Dict[str, int] = {}
    for record in report.collector.records():
        key = f"pid{record.pid}/{record.cat}"
        span_counts[key] = span_counts.get(key, 0) + 1
    document["span_counts"] = span_counts
    document["spans_total"] = len(report.collector.records())
    document["spans_dropped"] = report.collector.dropped
    return json.dumps(document, sort_keys=True, indent=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fig", default="fig6",
                        help="trace scenario to replay (default: fig6)")
    parser.add_argument("--n-ops", type=int, default=400,
                        help="measured ops per personality (default: 400)")
    args = parser.parse_args(argv)

    first = outcome_fingerprint(args.fig, args.n_ops)
    second = outcome_fingerprint(args.fig, args.n_ops)
    if first == second:
        lines = len(first.splitlines())
        print(f"determinism gate: OK — two {args.fig} runs of "
              f"{args.n_ops} ops produced identical outcomes "
              f"({lines} fingerprint lines)")
        return 0
    print("determinism gate: FAIL — seeded replay diverged:")
    diff = difflib.unified_diff(
        first.splitlines(keepends=True), second.splitlines(keepends=True),
        fromfile="run1", tofile="run2",
    )
    sys.stdout.writelines(diff)
    return 1


if __name__ == "__main__":
    sys.exit(main())
