"""Cache-effectiveness smoke check for the sweep-execution engine.

Runs one figure experiment twice through a fresh result cache and
asserts that the second (warm) invocation

* serves at least 90% of its points from the cache, and
* finishes at least 5x faster than the cold run.

Exercised by CI after the benchmark-shape job; it is a *host-side*
performance property (did caching actually skip the simulations?), so
unlike everything else in this repo it legitimately reads wall clocks.

Usage::

    PYTHONPATH=src python tools/cache_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro.core.figures import fig8_key_size_bandwidth
from repro.exec.runner import SweepRunner

MIN_HIT_RATE = 0.90
MIN_SPEEDUP = 5.0


def timed_run(cache_dir: str) -> tuple[float, "SweepRunner"]:
    runner = SweepRunner(workers=1, cache_dir=cache_dir)
    started = time.perf_counter()
    fig8_key_size_bandwidth(n_ops=400, blocks_per_plane=8, runner=runner)
    return time.perf_counter() - started, runner


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as root:
        cold_s, cold = timed_run(root)
        warm_s, warm = timed_run(root)
    cold_report, warm_report = cold.last_report, warm.last_report
    assert cold_report is not None and warm_report is not None
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"cold: {cold_report.format()}")
    print(f"warm: {warm_report.format()}")
    print(f"warm speedup: {speedup:.1f}x "
          f"(cold {cold_s:.2f}s, warm {warm_s:.3f}s)")

    failures = []
    if cold_report.hits != 0:
        failures.append(
            f"cold run should start empty, saw {cold_report.hits} hits"
        )
    if warm_report.hit_rate < MIN_HIT_RATE:
        failures.append(
            f"warm hit rate {warm_report.hit_rate:.0%} < {MIN_HIT_RATE:.0%}"
        )
    if speedup < MIN_SPEEDUP:
        failures.append(f"warm speedup {speedup:.1f}x < {MIN_SPEEDUP}x")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("cache smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
